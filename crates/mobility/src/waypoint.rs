//! The random-waypoint mobility model — the other classic MANET mobility
//! model, provided alongside the paper's random-turn model so results can
//! be checked for robustness to the mobility assumption.
//!
//! Each host repeatedly picks a uniform destination on the map, travels
//! there in a straight line at a uniform random speed, then pauses for a
//! fixed time before picking the next destination.

use manet_geom::Vec2;
use manet_sim_engine::{SimDuration, SimRng, SimTime, WireDecoder, WireEncoder, WireError};

use crate::map::Map;
use crate::model::{Mobility, Segment};

/// Parameters of the random-waypoint model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RandomWaypointParams {
    /// Lowest travel speed, m/s. Must be positive (the classic model's
    /// `min_speed → 0` speed-decay pathology is thereby excluded).
    pub min_speed_mps: f64,
    /// Highest travel speed, m/s.
    pub max_speed_mps: f64,
    /// Pause at each waypoint.
    pub pause: SimDuration,
}

impl RandomWaypointParams {
    /// A conventional parameterization from a maximum speed in km/h:
    /// speeds uniform in `[1 m/s, max]`, 5 s pause.
    ///
    /// # Panics
    ///
    /// Panics unless `max_speed_kmh` is finite and at least 3.6 km/h
    /// (1 m/s).
    pub fn conventional(max_speed_kmh: f64) -> Self {
        assert!(
            max_speed_kmh.is_finite() && max_speed_kmh >= 3.6,
            "waypoint model needs a max speed of at least 3.6 km/h, got {max_speed_kmh}"
        );
        RandomWaypointParams {
            min_speed_mps: 1.0,
            max_speed_mps: crate::map::kmh_to_mps(max_speed_kmh),
            pause: SimDuration::from_secs(5),
        }
    }
}

#[derive(Debug, Clone, Copy)]
enum Phase {
    /// Standing at `origin` until the segment end.
    Pausing,
    /// Traveling from `origin` with `velocity` until the segment end.
    Moving { velocity: Vec2 },
}

/// A host roaming under the random-waypoint model.
///
/// # Examples
///
/// ```
/// use manet_mobility::{Map, Mobility, RandomWaypoint, RandomWaypointParams};
/// use manet_sim_engine::{SimRng, SimTime};
///
/// let map = Map::square_units(5);
/// let mut host = RandomWaypoint::new(
///     map,
///     RandomWaypointParams::conventional(50.0),
///     map.bounds().center(),
///     SimTime::ZERO,
///     SimRng::seed_from(3),
/// );
/// for _ in 0..20 {
///     let t = host.next_change().unwrap();
///     assert!(map.contains(host.position_at(t)));
///     host.advance(t);
/// }
/// ```
#[derive(Debug, Clone)]
pub struct RandomWaypoint {
    map: Map,
    params: RandomWaypointParams,
    rng: SimRng,
    phase: Phase,
    origin: Vec2,
    seg_start: SimTime,
    seg_end: SimTime,
}

impl RandomWaypoint {
    /// Creates a host at `start_pos` that begins traveling at
    /// `start_time`.
    ///
    /// # Panics
    ///
    /// Panics if `start_pos` is outside the map or the speed range is
    /// invalid.
    pub fn new(
        map: Map,
        params: RandomWaypointParams,
        start_pos: Vec2,
        start_time: SimTime,
        rng: SimRng,
    ) -> Self {
        assert!(
            map.contains(start_pos),
            "start position {start_pos} outside map {}",
            map.label()
        );
        assert!(
            params.min_speed_mps > 0.0
                && params.max_speed_mps >= params.min_speed_mps
                && params.max_speed_mps.is_finite(),
            "invalid speed range [{}, {}]",
            params.min_speed_mps,
            params.max_speed_mps
        );
        let mut host = RandomWaypoint {
            map,
            params,
            rng,
            phase: Phase::Pausing,
            origin: start_pos,
            seg_start: start_time,
            seg_end: start_time,
        };
        host.pick_waypoint(start_time);
        host
    }

    /// `true` while the host is paused at a waypoint.
    pub fn is_paused(&self) -> bool {
        matches!(self.phase, Phase::Pausing)
    }

    fn pick_waypoint(&mut self, now: SimTime) {
        let dest = Vec2::new(
            self.rng.gen_range_f64(0.0..self.map.bounds().width()),
            self.rng.gen_range_f64(0.0..self.map.bounds().height()),
        );
        let distance = self.origin.distance_to(dest);
        if distance < 1e-9 {
            // Degenerate draw: treat as an immediate pause.
            self.phase = Phase::Pausing;
            self.seg_start = now;
            self.seg_end = now + self.params.pause.max(SimDuration::from_millis(1));
            return;
        }
        let speed = self.rng.gen_range_f64(
            self.params.min_speed_mps
                ..self
                    .params
                    .max_speed_mps
                    .max(self.params.min_speed_mps + f64::EPSILON),
        );
        let travel = SimDuration::from_secs_f64(distance / speed);
        let velocity = (dest - self.origin) / (distance / speed);
        self.phase = Phase::Moving { velocity };
        self.seg_start = now;
        self.seg_end = now + travel;
    }

    /// Serializes the mutable roaming state — RNG position, phase, and
    /// current segment — for a world snapshot. The map and parameters are
    /// not written: [`restore_snapshot`](Self::restore_snapshot) targets
    /// a host already built with the same configuration.
    pub fn snapshot_into(&self, enc: &mut WireEncoder) {
        for word in self.rng.state() {
            enc.u64(word);
        }
        match self.phase {
            Phase::Pausing => enc.u8(0),
            Phase::Moving { velocity } => {
                enc.u8(1);
                enc.f64(velocity.x);
                enc.f64(velocity.y);
            }
        }
        enc.f64(self.origin.x);
        enc.f64(self.origin.y);
        enc.u64(self.seg_start.as_nanos());
        enc.u64(self.seg_end.as_nanos());
    }

    /// Overwrites this host's mutable state from
    /// [`snapshot_into`](Self::snapshot_into) output.
    pub fn restore_snapshot(&mut self, dec: &mut WireDecoder<'_>) -> Result<(), WireError> {
        let mut state = [0u64; 4];
        for word in &mut state {
            *word = dec.u64()?;
        }
        self.rng = SimRng::from_state(state);
        let tag_at = dec.position();
        self.phase = match dec.u8()? {
            0 => Phase::Pausing,
            1 => Phase::Moving {
                velocity: Vec2::new(dec.f64()?, dec.f64()?),
            },
            _ => {
                return Err(WireError {
                    at: tag_at,
                    what: "waypoint phase tag",
                })
            }
        };
        self.origin = Vec2::new(dec.f64()?, dec.f64()?);
        self.seg_start = SimTime::from_nanos(dec.u64()?);
        self.seg_end = SimTime::from_nanos(dec.u64()?);
        Ok(())
    }
}

impl Mobility for RandomWaypoint {
    fn position_at(&self, t: SimTime) -> Vec2 {
        let t = t.clamp(self.seg_start, self.seg_end);
        match self.phase {
            Phase::Pausing => self.origin,
            Phase::Moving { velocity } => {
                let dt = (t - self.seg_start).as_secs_f64();
                self.map.bounds().clamp(self.origin + velocity * dt)
            }
        }
    }

    fn next_change(&self) -> Option<SimTime> {
        Some(self.seg_end)
    }

    fn advance(&mut self, now: SimTime) {
        self.origin = self.position_at(self.seg_end);
        match self.phase {
            Phase::Moving { .. } if !self.params.pause.is_zero() => {
                self.phase = Phase::Pausing;
                self.seg_start = now;
                self.seg_end = now + self.params.pause;
            }
            _ => self.pick_waypoint(now),
        }
    }

    fn segment(&self) -> Segment {
        let (velocity, moving) = match self.phase {
            Phase::Pausing => (Vec2::ZERO, false),
            Phase::Moving { velocity } => (velocity, true),
        };
        Segment {
            origin: self.origin,
            velocity,
            seg_start: self.seg_start,
            seg_end: self.seg_end,
            moving,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn host(seed: u64) -> RandomWaypoint {
        let map = Map::square_units(5);
        RandomWaypoint::new(
            map,
            RandomWaypointParams::conventional(50.0),
            map.bounds().center(),
            SimTime::ZERO,
            SimRng::seed_from(seed),
        )
    }

    #[test]
    fn stays_on_map_across_many_segments() {
        let map = Map::square_units(5);
        for seed in 0..5 {
            let mut h = host(seed);
            for _ in 0..200 {
                let end = h.next_change().unwrap();
                assert!(map.contains(h.position_at(end)));
                h.advance(end);
            }
        }
    }

    #[test]
    fn alternates_travel_and_pause() {
        let mut h = host(1);
        let mut saw_pause = false;
        let mut saw_travel = false;
        for _ in 0..20 {
            if h.is_paused() {
                saw_pause = true;
                // Position is constant during a pause.
                let start = h.position_at(h.seg_start);
                let end = h.position_at(h.next_change().unwrap());
                assert_eq!(start, end);
            } else {
                saw_travel = true;
            }
            let end = h.next_change().unwrap();
            h.advance(end);
        }
        assert!(saw_pause && saw_travel);
    }

    #[test]
    fn pause_lasts_exactly_the_configured_time() {
        let mut h = host(2);
        // Advance until we enter a pause.
        for _ in 0..10 {
            let end = h.next_change().unwrap();
            h.advance(end);
            if h.is_paused() {
                let length = h.next_change().unwrap() - h.seg_start;
                assert_eq!(length, SimDuration::from_secs(5));
                return;
            }
        }
        panic!("never paused");
    }

    #[test]
    fn travel_speed_is_within_bounds() {
        let mut h = host(3);
        for _ in 0..50 {
            if let Phase::Moving { velocity } = h.phase {
                let speed = velocity.length();
                assert!(speed >= 1.0 - 1e-9, "speed {speed} below minimum");
                assert!(
                    speed <= h.params.max_speed_mps + 1e-9,
                    "speed {speed} above maximum"
                );
            }
            let end = h.next_change().unwrap();
            h.advance(end);
        }
    }

    #[test]
    fn position_is_continuous_across_advance() {
        let mut h = host(4);
        for _ in 0..100 {
            let end = h.next_change().unwrap();
            let before = h.position_at(end);
            h.advance(end);
            let after = h.position_at(end);
            assert!(before.distance_to(after) < 1e-6);
        }
    }

    #[test]
    #[should_panic(expected = "outside map")]
    fn offmap_start_panics() {
        let map = Map::square_units(1);
        let _ = RandomWaypoint::new(
            map,
            RandomWaypointParams::conventional(10.0),
            Vec2::new(-5.0, 0.0),
            SimTime::ZERO,
            SimRng::seed_from(0),
        );
    }
}
