//! Initial host placements.

use manet_geom::Vec2;
use manet_sim_engine::SimRng;

use crate::map::Map;

/// `count` positions drawn independently and uniformly over the map —
/// the paper's initial distribution for its 100 hosts.
///
/// # Examples
///
/// ```
/// use manet_mobility::{uniform_placement, Map};
/// use manet_sim_engine::SimRng;
///
/// let map = Map::square_units(3);
/// let hosts = uniform_placement(&map, 100, &mut SimRng::seed_from(7));
/// assert_eq!(hosts.len(), 100);
/// assert!(hosts.iter().all(|&p| map.contains(p)));
/// ```
pub fn uniform_placement(map: &Map, count: usize, rng: &mut SimRng) -> Vec<Vec2> {
    (0..count)
        .map(|_| {
            Vec2::new(
                rng.gen_range_f64(0.0..map.bounds().width()),
                rng.gen_range_f64(0.0..map.bounds().height()),
            )
        })
        .collect()
}

/// `count` positions equally spaced along a horizontal line through the
/// map's vertical center, `spacing` meters apart starting at `x0`.
///
/// Useful for deterministic chain/line topologies in tests: with spacing
/// just under the radio radius every host reaches exactly its line
/// neighbors.
///
/// # Panics
///
/// Panics if the line does not fit on the map.
pub fn line_placement(map: &Map, count: usize, x0: f64, spacing: f64) -> Vec<Vec2> {
    let y = map.bounds().height() / 2.0;
    let positions: Vec<Vec2> = (0..count)
        .map(|i| Vec2::new(x0 + i as f64 * spacing, y))
        .collect();
    assert!(
        positions.iter().all(|&p| map.contains(p)),
        "line placement of {count} hosts at spacing {spacing} does not fit the map"
    );
    positions
}

/// `count` positions on a uniform grid covering the map with equal margins.
///
/// The grid is the smallest `c × r` arrangement with `c * r >= count`;
/// surplus cells at the end are left empty.
pub fn grid_placement(map: &Map, count: usize) -> Vec<Vec2> {
    if count == 0 {
        return Vec::new();
    }
    let cols = (count as f64).sqrt().ceil() as usize;
    let rows = count.div_ceil(cols);
    let dx = map.bounds().width() / cols as f64;
    let dy = map.bounds().height() / rows as f64;
    (0..count)
        .map(|i| {
            let c = i % cols;
            let r = i / cols;
            Vec2::new((c as f64 + 0.5) * dx, (r as f64 + 0.5) * dy)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_stays_on_map_and_spreads() {
        let map = Map::square_units(5);
        let mut rng = SimRng::seed_from(1);
        let hosts = uniform_placement(&map, 500, &mut rng);
        assert!(hosts.iter().all(|&p| map.contains(p)));
        // Rough uniformity: each quadrant holds between 15% and 35%.
        let half_w = map.bounds().width() / 2.0;
        let half_h = map.bounds().height() / 2.0;
        let q1 = hosts
            .iter()
            .filter(|p| p.x < half_w && p.y < half_h)
            .count();
        assert!((75..=175).contains(&q1), "quadrant count {q1}");
    }

    #[test]
    fn line_is_evenly_spaced() {
        let map = Map::square_units(11);
        let hosts = line_placement(&map, 10, 100.0, 450.0);
        for w in hosts.windows(2) {
            assert!((w[1].x - w[0].x - 450.0).abs() < 1e-9);
            assert_eq!(w[0].y, w[1].y);
        }
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn oversized_line_panics() {
        let map = Map::square_units(1);
        let _ = line_placement(&map, 10, 0.0, 400.0);
    }

    #[test]
    fn grid_covers_count() {
        let map = Map::square_units(3);
        for count in [1, 4, 7, 100] {
            let hosts = grid_placement(&map, count);
            assert_eq!(hosts.len(), count);
            assert!(hosts.iter().all(|&p| map.contains(p)));
        }
        assert!(grid_placement(&map, 0).is_empty());
    }
}
