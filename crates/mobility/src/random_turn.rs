//! The paper's random-turn roaming model.
//!
//! From §4 of the paper: *"The roaming pattern of each host consists of a
//! series of turns. In each turn, the direction, speed, and time interval
//! are randomly generated. The direction is uniformly distributed from 0°
//! to 360°, the time interval from 1 to 100 seconds, and the speed from 0
//! to a given maximum speed."*
//!
//! The paper does not specify boundary behaviour. This implementation
//! **clips a turn at the map edge**: when the straight-line path would
//! leave the map, the segment ends at the wall and the host immediately
//! takes its next (re-randomized) turn there. Hosts therefore never leave
//! the map, motion stays piecewise-linear, and the turn statistics match
//! the paper everywhere away from walls.

use manet_geom::Vec2;
use manet_sim_engine::{SimDuration, SimRng, SimTime, WireDecoder, WireEncoder, WireError};

use crate::map::Map;
use crate::model::{Mobility, Segment};

/// `a <= b` with a small absolute tolerance for accumulated float error.
fn approx_le(a: f64, b: f64) -> bool {
    a <= b + 1e-6
}

/// Parameters of the random-turn model.
///
/// The defaults are the paper's: turn interval uniform in `[1, 100]` s and
/// speed uniform in `[0, max_speed]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RandomTurnParams {
    /// Maximum speed, meters per second.
    pub max_speed_mps: f64,
    /// Shortest turn duration.
    pub min_interval: SimDuration,
    /// Longest turn duration.
    pub max_interval: SimDuration,
}

impl RandomTurnParams {
    /// The paper's parameters for a given maximum speed in km/h.
    ///
    /// # Panics
    ///
    /// Panics if `max_speed_kmh` is negative or not finite.
    pub fn paper(max_speed_kmh: f64) -> Self {
        assert!(
            max_speed_kmh.is_finite() && max_speed_kmh >= 0.0,
            "max speed must be finite and non-negative, got {max_speed_kmh}"
        );
        RandomTurnParams {
            max_speed_mps: crate::map::kmh_to_mps(max_speed_kmh),
            min_interval: SimDuration::from_secs(1),
            max_interval: SimDuration::from_secs(100),
        }
    }
}

/// A host roaming with the paper's random-turn pattern.
///
/// # Examples
///
/// ```
/// use manet_mobility::{Map, Mobility, RandomTurn, RandomTurnParams};
/// use manet_geom::Vec2;
/// use manet_sim_engine::{SimRng, SimTime};
///
/// let map = Map::square_units(3);
/// let mut host = RandomTurn::new(
///     map,
///     RandomTurnParams::paper(30.0),
///     Vec2::new(700.0, 700.0),
///     SimTime::ZERO,
///     SimRng::seed_from(1),
/// );
/// // Advance through a few turns; the host stays on the map.
/// for _ in 0..10 {
///     let t = host.next_change().unwrap();
///     assert!(map.contains(host.position_at(t)));
///     host.advance(t);
/// }
/// ```
#[derive(Debug, Clone)]
pub struct RandomTurn {
    map: Map,
    params: RandomTurnParams,
    rng: SimRng,
    origin: Vec2,
    velocity: Vec2,
    seg_start: SimTime,
    seg_end: SimTime,
}

impl RandomTurn {
    /// Creates a roaming host at `start_pos`, taking its first turn at
    /// `start_time`.
    ///
    /// # Panics
    ///
    /// Panics if `start_pos` is outside the map.
    pub fn new(
        map: Map,
        params: RandomTurnParams,
        start_pos: Vec2,
        start_time: SimTime,
        rng: SimRng,
    ) -> Self {
        assert!(
            map.contains(start_pos),
            "start position {start_pos} outside map {}",
            map.label()
        );
        let mut host = RandomTurn {
            map,
            params,
            rng,
            origin: start_pos,
            velocity: Vec2::ZERO,
            seg_start: start_time,
            seg_end: start_time,
        };
        host.take_turn(start_time);
        host
    }

    /// The velocity of the current segment, m/s.
    pub fn velocity(&self) -> Vec2 {
        self.velocity
    }

    /// Draws a fresh (direction, speed, interval) turn at `now`, clipping
    /// the segment where it would cross the map boundary.
    fn take_turn(&mut self, now: SimTime) {
        let origin = self.map.bounds().clamp(self.position_at_clamped(now));
        // Redraw until the direction does not point straight off the map
        // from a boundary position (at most a handful of iterations; half
        // of all directions point inward from an edge).
        for attempt in 0..64 {
            let theta = self.rng.gen_range_f64(0.0..std::f64::consts::TAU);
            let speed = self
                .rng
                .gen_range_f64(0.0..self.params.max_speed_mps.max(f64::MIN_POSITIVE));
            let interval = self
                .rng
                .gen_duration_between(self.params.min_interval, self.params.max_interval);
            let velocity = Vec2::from_angle(theta) * speed;
            let duration = interval.as_secs_f64();
            let exit = time_to_boundary(origin, velocity, self.map);
            let seg_secs = match exit {
                Some(t_exit) if t_exit < duration => {
                    if t_exit < 1e-3 && attempt < 63 {
                        // Pointing off the map from (almost) on the wall;
                        // pick a new direction instead of a zero-length hop.
                        continue;
                    }
                    t_exit.max(1e-3)
                }
                _ => duration,
            };
            self.origin = origin;
            self.velocity = velocity;
            self.seg_start = now;
            self.seg_end = now + SimDuration::from_secs_f64(seg_secs);
            return;
        }
        // Extremely unlikely fallback: stand still for the minimum interval.
        self.origin = origin;
        self.velocity = Vec2::ZERO;
        self.seg_start = now;
        self.seg_end = now + self.params.min_interval;
    }

    fn position_at_clamped(&self, t: SimTime) -> Vec2 {
        let t = t.clamp(self.seg_start, self.seg_end);
        let dt = (t - self.seg_start).as_secs_f64();
        self.map.bounds().clamp(self.origin + self.velocity * dt)
    }

    /// Serializes the mutable roaming state — RNG position and current
    /// segment — for a world snapshot. The map and parameters are not
    /// written: [`restore_snapshot`](Self::restore_snapshot) targets a
    /// host already built with the same configuration.
    pub fn snapshot_into(&self, enc: &mut WireEncoder) {
        for word in self.rng.state() {
            enc.u64(word);
        }
        enc.f64(self.origin.x);
        enc.f64(self.origin.y);
        enc.f64(self.velocity.x);
        enc.f64(self.velocity.y);
        enc.u64(self.seg_start.as_nanos());
        enc.u64(self.seg_end.as_nanos());
    }

    /// Overwrites this host's mutable state from
    /// [`snapshot_into`](Self::snapshot_into) output.
    pub fn restore_snapshot(&mut self, dec: &mut WireDecoder<'_>) -> Result<(), WireError> {
        let mut state = [0u64; 4];
        for word in &mut state {
            *word = dec.u64()?;
        }
        self.rng = SimRng::from_state(state);
        self.origin = Vec2::new(dec.f64()?, dec.f64()?);
        self.velocity = Vec2::new(dec.f64()?, dec.f64()?);
        self.seg_start = SimTime::from_nanos(dec.u64()?);
        self.seg_end = SimTime::from_nanos(dec.u64()?);
        Ok(())
    }
}

impl Mobility for RandomTurn {
    /// Position at `t`, clamped into the current segment's time window
    /// (queries momentarily past the segment end — e.g. same-timestamp
    /// events ordered before the turn event — return the segment endpoint).
    fn position_at(&self, t: SimTime) -> Vec2 {
        debug_assert!(
            t >= self.seg_start,
            "position query at {t} before segment start {}",
            self.seg_start
        );
        let p = self.position_at_clamped(t);
        debug_assert!(
            approx_le(0.0, p.x) && approx_le(p.x, self.map.bounds().width()),
            "x off map: {p}"
        );
        p
    }

    fn next_change(&self) -> Option<SimTime> {
        Some(self.seg_end)
    }

    fn advance(&mut self, now: SimTime) {
        self.take_turn(now);
    }

    fn segment(&self) -> Segment {
        Segment {
            origin: self.origin,
            velocity: self.velocity,
            seg_start: self.seg_start,
            seg_end: self.seg_end,
            moving: true,
        }
    }
}

/// Time in seconds until the ray `origin + t·velocity` first leaves `map`,
/// or `None` if it never does (zero velocity or exactly parallel motion
/// inside the bounds).
fn time_to_boundary(origin: Vec2, velocity: Vec2, map: Map) -> Option<f64> {
    let mut earliest: Option<f64> = None;
    let mut consider = |t: f64| {
        if t >= 0.0 && earliest.is_none_or(|e| t < e) {
            earliest = Some(t);
        }
    };
    if velocity.x > 0.0 {
        consider((map.bounds().width() - origin.x) / velocity.x);
    } else if velocity.x < 0.0 {
        consider(-origin.x / velocity.x);
    }
    if velocity.y > 0.0 {
        consider((map.bounds().height() - origin.y) / velocity.y);
    } else if velocity.y < 0.0 {
        consider(-origin.y / velocity.y);
    }
    earliest
}

#[cfg(test)]
mod tests {
    use super::*;

    fn walk(seed: u64, units: u32, kmh: f64, turns: usize) -> Vec<Vec2> {
        let map = Map::square_units(units);
        let mut host = RandomTurn::new(
            map,
            RandomTurnParams::paper(kmh),
            map.bounds().center(),
            SimTime::ZERO,
            SimRng::seed_from(seed),
        );
        let mut positions = Vec::new();
        for _ in 0..turns {
            let end = host.next_change().unwrap();
            // Sample the middle and the end of each segment.
            let mid = SimTime::from_nanos((host.seg_start.as_nanos() + end.as_nanos()) / 2);
            positions.push(host.position_at(mid));
            positions.push(host.position_at(end));
            host.advance(end);
        }
        positions
    }

    #[test]
    fn host_stays_on_map() {
        for seed in 0..10 {
            let map = Map::square_units(3);
            for p in walk(seed, 3, 30.0, 200) {
                assert!(map.contains(p), "seed {seed}: {p} left the map");
            }
        }
    }

    #[test]
    fn host_actually_moves() {
        let positions = walk(1, 5, 50.0, 50);
        let start = positions[0];
        let max_dist = positions
            .iter()
            .map(|p| p.distance_to(start))
            .fold(0.0, f64::max);
        assert!(max_dist > 100.0, "host barely moved: {max_dist} m");
    }

    #[test]
    fn speed_never_exceeds_max() {
        let map = Map::square_units(5);
        let params = RandomTurnParams::paper(50.0);
        let mut host = RandomTurn::new(
            map,
            params,
            map.bounds().center(),
            SimTime::ZERO,
            SimRng::seed_from(2),
        );
        for _ in 0..300 {
            assert!(
                host.velocity().length() <= params.max_speed_mps + 1e-9,
                "speed {} exceeds max {}",
                host.velocity().length(),
                params.max_speed_mps
            );
            let end = host.next_change().unwrap();
            host.advance(end);
        }
    }

    #[test]
    fn segments_have_positive_length() {
        let map = Map::square_units(1);
        let mut host = RandomTurn::new(
            map,
            RandomTurnParams::paper(10.0),
            Vec2::ZERO, // corner start: worst case for wall clipping
            SimTime::ZERO,
            SimRng::seed_from(3),
        );
        let mut prev = SimTime::ZERO;
        for _ in 0..500 {
            let end = host.next_change().unwrap();
            assert!(end > prev, "segment must advance time");
            prev = end;
            host.advance(end);
        }
    }

    #[test]
    fn position_is_continuous_across_turns() {
        let map = Map::square_units(3);
        let mut host = RandomTurn::new(
            map,
            RandomTurnParams::paper(30.0),
            map.bounds().center(),
            SimTime::ZERO,
            SimRng::seed_from(4),
        );
        for _ in 0..200 {
            let end = host.next_change().unwrap();
            let before = host.position_at(end);
            host.advance(end);
            let after = host.position_at(end);
            assert!(
                before.distance_to(after) < 1e-6,
                "teleport at turn: {before} -> {after}"
            );
        }
    }

    #[test]
    fn zero_max_speed_stays_put() {
        let map = Map::square_units(3);
        let start = map.bounds().center();
        let mut host = RandomTurn::new(
            map,
            RandomTurnParams::paper(0.0),
            start,
            SimTime::ZERO,
            SimRng::seed_from(5),
        );
        for _ in 0..20 {
            let end = host.next_change().unwrap();
            assert!(host.position_at(end).distance_to(start) < 1e-6);
            host.advance(end);
        }
    }

    #[test]
    #[should_panic(expected = "outside map")]
    fn offmap_start_panics() {
        let map = Map::square_units(1);
        let _ = RandomTurn::new(
            map,
            RandomTurnParams::paper(10.0),
            Vec2::new(-1.0, 0.0),
            SimTime::ZERO,
            SimRng::seed_from(0),
        );
    }
}
