//! Property tests: any generated scenario survives parse → serialize →
//! parse unchanged, through both on-disk encodings, and compiles to the
//! same timeline afterwards.

use manet_scenario::{ChurnKind, Region, Scenario};
use manet_sim_engine::SimTime;
use manet_testkit::{prop_check, Gen};

/// Draws a random (but structurally plausible) scenario. Validity against
/// a host count is NOT guaranteed — round-tripping must work for any
/// parseable script, valid or not.
fn gen_scenario(g: &mut Gen) -> Scenario {
    let mut scenario = Scenario::new(format!("s{}", g.u32_in(0..1000)));
    if g.bool() {
        scenario.hosts = Some(g.u32_in(1..2000));
    }
    let time = |g: &mut Gen| SimTime::from_nanos(g.u64_in(0..120_000_000_000));
    for _ in 0..g.usize_in(0..6) {
        let kind = match g.u32_in(0..4) {
            0 => ChurnKind::Leave,
            1 => ChurnKind::Join,
            2 => ChurnKind::Crash,
            _ => ChurnKind::Recover,
        };
        scenario = scenario.churn(time(g), kind, g.u32_in(0..2000));
    }
    for _ in 0..g.usize_in(0..4) {
        let from = time(g);
        scenario = scenario.blackout(
            from,
            from + manet_sim_engine::SimDuration::from_nanos(g.u64_in(1..60_000_000_000)),
            g.u32_in(0..2000),
            g.u32_in(0..2000),
        );
    }
    for _ in 0..g.usize_in(0..4) {
        let from = time(g);
        scenario = scenario.noise(
            from,
            from + manet_sim_engine::SimDuration::from_nanos(g.u64_in(1..60_000_000_000)),
            g.f64_in_incl(0.001, 1.0),
        );
    }
    for _ in 0..g.usize_in(0..3) {
        let from = time(g);
        let x0 = g.f64_in(0.0..5000.0);
        let y0 = g.f64_in(0.0..5000.0);
        scenario = scenario.partition(
            from,
            from + manet_sim_engine::SimDuration::from_nanos(g.u64_in(1..60_000_000_000)),
            Region {
                x0,
                y0,
                x1: x0 + g.f64_in_incl(0.1, 3000.0),
                y1: y0 + g.f64_in_incl(0.1, 3000.0),
            },
        );
    }
    scenario
}

prop_check! {
    /// Text encoding: parse(to_text(s)) == s, bit for bit (times, floats,
    /// ordering), and the compiled timelines match.
    fn text_round_trip(g, cases = 200) {
        let scenario = gen_scenario(g);
        let text = scenario.to_text();
        let reparsed = Scenario::parse(&text).unwrap_or_else(|e| {
            panic!("canonical text failed to parse: {e}\n{text}")
        });
        assert_eq!(reparsed, scenario, "text round-trip changed the scenario:\n{text}");
        assert_eq!(reparsed.to_text(), text, "second serialization differs");
        let a: Vec<_> = scenario.compile().iter().map(|(t, v)| (t, *v)).collect();
        let b: Vec<_> = reparsed.compile().iter().map(|(t, v)| (t, *v)).collect();
        assert_eq!(a, b, "compiled timelines diverged");
    }
}

prop_check! {
    /// JSON encoding: parse(to_json(s)) == s, and the two encodings agree
    /// with each other.
    fn json_round_trip(g, cases = 200) {
        let scenario = gen_scenario(g);
        let json = scenario.to_json();
        let reparsed = Scenario::parse(&json).unwrap_or_else(|e| {
            panic!("canonical JSON failed to parse: {e}\n{json}")
        });
        assert_eq!(reparsed, scenario, "JSON round-trip changed the scenario:\n{json}");
        assert_eq!(
            Scenario::parse(&reparsed.to_text()).unwrap(),
            scenario,
            "text/JSON encodings disagree"
        );
    }
}
