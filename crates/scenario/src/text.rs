//! Line-based text encoding of a scenario (`manet-scenario/1`).
//!
//! The format is deliberately diff-friendly: one declaration per line,
//! `#` comments, blank lines ignored. The first significant line must be
//! the schema identifier. Directives:
//!
//! ```text
//! manet-scenario/1
//! name churn_quick
//! hosts 100
//! at 12.5 leave 5
//! at 14 join 5
//! at 8 crash 7
//! at 20.25 recover 7
//! from 5 until 15 blackout 3 9
//! from 5 until 15 noise 0.25
//! from 30 until 60 partition 0 0 1000 2500
//! ```
//!
//! Times are decimal seconds with at most nine fractional digits, parsed
//! exactly (digit by digit, not through `f64`) so that serialize → parse
//! round-trips to the same nanosecond value.

use manet_sim_engine::SimTime;

use crate::{ChurnKind, LinkBlackout, NoiseBurst, Partition, Region, Scenario, ScenarioError};

/// A token plus its 1-based character column in the source line.
#[derive(Clone, Copy)]
pub(crate) struct Field<'a> {
    pub(crate) col: usize,
    pub(crate) text: &'a str,
}

/// Splits the code portion of a line (comment stripped) into
/// whitespace-separated tokens, each tagged with its 1-based character
/// column in the original line.
pub(crate) fn fields_with_cols(code: &str) -> Vec<Field<'_>> {
    let mut fields = Vec::new();
    let mut start: Option<usize> = None;
    for (byte, c) in code.char_indices() {
        if c.is_whitespace() {
            if let Some(s) = start.take() {
                fields.push((s, &code[s..byte]));
            }
        } else if start.is_none() {
            start = Some(byte);
        }
    }
    if let Some(s) = start {
        fields.push((s, &code[s..]));
    }
    fields
        .into_iter()
        .map(|(byte, text)| Field {
            col: code[..byte].chars().count() + 1,
            text,
        })
        .collect()
}

/// Parses the text encoding.
pub(crate) fn parse_scenario(input: &str) -> Result<Scenario, ScenarioError> {
    let mut scenario = Scenario::new("scenario");
    let mut saw_schema = false;
    for (index, raw) in input.lines().enumerate() {
        let line_no = index + 1;
        let code = match raw.find('#') {
            Some(at) => &raw[..at],
            None => raw,
        };
        let fields = fields_with_cols(code);
        let Some(&first) = fields.first() else {
            continue;
        };
        if !saw_schema {
            let line = code.trim();
            if line != crate::SCHEMA {
                return Err(ScenarioError::at(
                    line_no,
                    first.col,
                    format!("expected schema header {:?}, got {line:?}", crate::SCHEMA),
                ));
            }
            saw_schema = true;
            continue;
        }
        match first.text {
            "name" => {
                let [_, name] = fields[..] else {
                    return Err(ScenarioError::at(line_no, first.col, "usage: name <token>"));
                };
                scenario.name = name.text.to_string();
            }
            "hosts" => {
                let [_, count] = fields[..] else {
                    return Err(ScenarioError::at(
                        line_no,
                        first.col,
                        "usage: hosts <count>",
                    ));
                };
                scenario.hosts = Some(parse_u32(count, line_no)?);
            }
            "at" => {
                let [_, at, kind, host] = fields[..] else {
                    return Err(ScenarioError::at(
                        line_no,
                        first.col,
                        "usage: at <time> <join|leave|crash|recover> <host>",
                    ));
                };
                let churn_kind = ChurnKind::from_label(kind.text).ok_or_else(|| {
                    ScenarioError::at(
                        line_no,
                        kind.col,
                        format!("unknown churn kind {:?}", kind.text),
                    )
                })?;
                scenario.churn.push(crate::ChurnEvent {
                    at: parse_time(at, line_no)?,
                    kind: churn_kind,
                    host: parse_u32(host, line_no)?,
                });
            }
            "from" => {
                if fields.len() < 5 || fields[2].text != "until" {
                    return Err(ScenarioError::at(
                        line_no,
                        first.col,
                        "usage: from <time> until <time> <blackout|noise|partition> ...",
                    ));
                }
                let from = parse_time(fields[1], line_no)?;
                let until = parse_time(fields[3], line_no)?;
                match (fields[4].text, &fields[5..]) {
                    ("blackout", [a, b]) => scenario.blackouts.push(LinkBlackout {
                        from,
                        until,
                        a: parse_u32(*a, line_no)?,
                        b: parse_u32(*b, line_no)?,
                    }),
                    ("noise", [p]) => scenario.noise.push(NoiseBurst {
                        from,
                        until,
                        drop_probability: parse_f64(*p, line_no)?,
                    }),
                    ("partition", [x0, y0, x1, y1]) => scenario.partitions.push(Partition {
                        from,
                        until,
                        region: Region {
                            x0: parse_f64(*x0, line_no)?,
                            y0: parse_f64(*y0, line_no)?,
                            x1: parse_f64(*x1, line_no)?,
                            y1: parse_f64(*y1, line_no)?,
                        },
                    }),
                    (fault, _) => {
                        return Err(ScenarioError::at(
                            line_no,
                            fields[4].col,
                            format!(
                                "bad fault window: {fault:?} with {} operand(s)",
                                fields.len() - 5
                            ),
                        ));
                    }
                }
            }
            directive => {
                return Err(ScenarioError::at(
                    line_no,
                    first.col,
                    format!("unknown directive {directive:?}"),
                ));
            }
        }
    }
    if !saw_schema {
        return Err(ScenarioError::new(format!(
            "empty scenario: missing schema header {:?}",
            crate::SCHEMA
        )));
    }
    Ok(scenario)
}

/// Renders the canonical text encoding.
pub(crate) fn render_scenario(scenario: &Scenario) -> String {
    let mut out = String::new();
    out.push_str(crate::SCHEMA);
    out.push('\n');
    out.push_str(&format!("name {}\n", scenario.name));
    if let Some(hosts) = scenario.hosts {
        out.push_str(&format!("hosts {hosts}\n"));
    }
    for event in &scenario.churn {
        out.push_str(&format!(
            "at {} {} {}\n",
            render_time(event.at),
            event.kind.label(),
            event.host
        ));
    }
    for window in &scenario.blackouts {
        out.push_str(&format!(
            "from {} until {} blackout {} {}\n",
            render_time(window.from),
            render_time(window.until),
            window.a,
            window.b
        ));
    }
    for burst in &scenario.noise {
        out.push_str(&format!(
            "from {} until {} noise {}\n",
            render_time(burst.from),
            render_time(burst.until),
            render_f64(burst.drop_probability)
        ));
    }
    for window in &scenario.partitions {
        let r = window.region;
        out.push_str(&format!(
            "from {} until {} partition {} {} {} {}\n",
            render_time(window.from),
            render_time(window.until),
            render_f64(r.x0),
            render_f64(r.y0),
            render_f64(r.x1),
            render_f64(r.y1)
        ));
    }
    out
}

/// Parses decimal seconds (`"12"`, `"12.5"`, `"0.000000001"`) exactly into
/// nanosecond-resolution [`SimTime`]. At most nine fractional digits.
fn parse_time(field: Field<'_>, line_no: usize) -> Result<SimTime, ScenarioError> {
    let token = field.text;
    let bad =
        |why: &str| ScenarioError::at(line_no, field.col, format!("bad time {token:?}: {why}"));
    let (whole, frac) = match token.split_once('.') {
        Some((_, "")) => return Err(bad("trailing decimal point")),
        Some((whole, frac)) => (whole, frac),
        None => (token, ""),
    };
    if whole.is_empty() || !whole.bytes().all(|b| b.is_ascii_digit()) {
        return Err(bad("expected decimal seconds"));
    }
    if frac.len() > 9 || !frac.bytes().all(|b| b.is_ascii_digit()) {
        return Err(bad("at most nine fractional digits"));
    }
    let secs: u64 = whole
        .parse()
        .map_err(|_| bad("whole seconds out of range"))?;
    let mut nanos = 0u64;
    for b in frac.bytes() {
        nanos = nanos * 10 + u64::from(b - b'0');
    }
    nanos *= 10u64.pow(9 - frac.len() as u32);
    secs.checked_mul(1_000_000_000)
        .and_then(|n| n.checked_add(nanos))
        .map(SimTime::from_nanos)
        .ok_or_else(|| bad("overflows the simulation clock"))
}

/// Renders a [`SimTime`] as decimal seconds, trimming trailing zeros, so
/// [`parse_time`] recovers the exact nanosecond value.
pub(crate) fn render_time(at: SimTime) -> String {
    let nanos = at.as_nanos();
    let (secs, rem) = (nanos / 1_000_000_000, nanos % 1_000_000_000);
    if rem == 0 {
        return secs.to_string();
    }
    let mut frac = format!("{rem:09}");
    while frac.ends_with('0') {
        frac.pop();
    }
    format!("{secs}.{frac}")
}

fn parse_u32(field: Field<'_>, line_no: usize) -> Result<u32, ScenarioError> {
    field
        .text
        .parse()
        .map_err(|_| ScenarioError::at(line_no, field.col, format!("bad integer {:?}", field.text)))
}

fn parse_f64(field: Field<'_>, line_no: usize) -> Result<f64, ScenarioError> {
    match field.text.parse::<f64>() {
        Ok(v) if v.is_finite() => Ok(v),
        _ => Err(ScenarioError::at(
            line_no,
            field.col,
            format!("bad number {:?}", field.text),
        )),
    }
}

/// Renders an `f64` via `Display`, which is shortest-round-trip in Rust:
/// parsing the output recovers the exact bit pattern.
pub(crate) fn render_f64(v: f64) -> String {
    format!("{v}")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tok(text: &str) -> Field<'_> {
        Field { col: 4, text }
    }

    #[test]
    fn time_round_trips_exactly() {
        for nanos in [0, 1, 999_999_999, 12_500_000_000, 3_000_000_001] {
            let at = SimTime::from_nanos(nanos);
            assert_eq!(parse_time(tok(&render_time(at)), 1).unwrap(), at);
        }
        assert_eq!(render_time(SimTime::from_nanos(12_500_000_000)), "12.5");
        assert_eq!(
            parse_time(tok("0.000000001"), 1).unwrap(),
            SimTime::from_nanos(1)
        );
    }

    #[test]
    fn bad_times_are_rejected_with_line_and_column() {
        for bad in ["", ".", "1.", ".5", "-1", "1e3", "1.0000000001", "x"] {
            let err = parse_time(tok(bad), 7).unwrap_err();
            assert_eq!(err.line, Some(7), "{bad:?} should fail with a line tag");
            assert_eq!(err.column, Some(4), "{bad:?} should carry the token column");
        }
    }

    #[test]
    fn errors_point_at_the_offending_token() {
        // "at 1 flee 0": the unknown churn kind starts at column 6.
        let err = parse_scenario("manet-scenario/1\nat 1 flee 0\n").unwrap_err();
        assert_eq!((err.line, err.column), (Some(2), Some(6)));
        assert!(err.to_string().starts_with("line 2, column 6:"), "{err}");

        // Bad time token in a fault window: "from" at 1, "2x" at 6.
        let err = parse_scenario("manet-scenario/1\nfrom 2x until 9 noise 0.5\n").unwrap_err();
        assert_eq!((err.line, err.column), (Some(2), Some(6)));

        // Indented directive: the column tracks the real position.
        let err = parse_scenario("manet-scenario/1\n   bogus 1\n").unwrap_err();
        assert_eq!((err.line, err.column), (Some(2), Some(4)));
    }

    #[test]
    fn comments_and_blanks_are_ignored() {
        let s = parse_scenario(
            "# leading comment\n\nmanet-scenario/1\nname t # trailing\n\nat 1 leave 0 # bye\n",
        )
        .unwrap();
        assert_eq!(s.name, "t");
        assert_eq!(s.churn.len(), 1);
    }

    #[test]
    fn missing_or_wrong_header_fails() {
        assert!(parse_scenario("").is_err());
        let err = parse_scenario("manet-scenario/2\n").unwrap_err();
        assert_eq!(err.line, Some(1));
    }

    #[test]
    fn unknown_directive_reports_line() {
        let err = parse_scenario("manet-scenario/1\nfoo bar\n").unwrap_err();
        assert_eq!(err.line, Some(2));
        assert!(err.message.contains("foo"));
    }

    #[test]
    fn malformed_fault_window_fails() {
        let err = parse_scenario("manet-scenario/1\nfrom 1 until 2 blackout 3\n").unwrap_err();
        assert_eq!(err.line, Some(2));
        let err = parse_scenario("manet-scenario/1\nfrom 1 til 2 noise 0.5\n").unwrap_err();
        assert_eq!(err.line, Some(2));
    }
}
