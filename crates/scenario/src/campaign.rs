//! The `manet-campaign/1` job-envelope format.
//!
//! A campaign file names a batch of simulation jobs for the campaign
//! server (`manet-sim serve`): every job is one simulator configuration —
//! scheme, map, population, workload, seed — optionally tied to a
//! `manet-scenario/1` churn script. The format follows the scenario
//! text conventions: one declaration per line, `#` comments, blank lines
//! ignored, schema header first. Directives:
//!
//! ```text
//! manet-campaign/1
//! name bakeoff_quick
//! defaults map=3 hosts=40 broadcasts=20
//! job scheme=flooding seed=1
//! job scheme=ac seed=1 label=ac_base
//! job scheme=counter:3 seed=2 scenario=scenarios/churn_quick.txt
//! sweep scheme=nc seeds=1..=25
//! ```
//!
//! `defaults` rebinds the per-job defaults for every *subsequent* line;
//! `job` emits one job; `sweep` expands `seeds=A..B` (half-open) or
//! `A..=B` (inclusive) into one job per seed — the compact spelling that
//! makes thousand-job campaigns a three-line file. Scheme strings use the
//! `manet-sim --scheme` grammar but are validated by the consumer (the
//! scenario crate sits below the scheme definitions), and `scenario=`
//! paths are resolved by whoever reads the file — the scripted client
//! inlines the referenced script before submitting, so the server never
//! touches the submitter's filesystem.

use crate::text::{fields_with_cols, Field};
use crate::ScenarioError;

/// Schema identifier of the campaign format this module parses.
pub const CAMPAIGN_SCHEMA: &str = "manet-campaign/1";

/// Expansion cap: a single campaign file may not describe more jobs than
/// this, so a typo'd sweep bound fails the parse instead of an allocator.
pub const MAX_CAMPAIGN_JOBS: usize = 1_000_000;

/// One fully resolved simulation job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobSpec {
    /// Unique, filename-safe label (given via `label=` or derived from
    /// the job index, scheme, and seed).
    pub label: String,
    /// Scheme string in the `manet-sim --scheme` grammar (`ac`,
    /// `counter:3`, …); validated by the consumer.
    pub scheme: String,
    /// Square map side in 500 m units.
    pub map_units: u32,
    /// Number of hosts.
    pub hosts: u32,
    /// Broadcast requests to issue.
    pub broadcasts: u32,
    /// Root RNG seed.
    pub seed: u64,
    /// Independent repetitions (seeds `seed..seed+repeats`) averaged into
    /// one metrics record, mirroring the experiment harness.
    pub repeats: u32,
    /// Optional `manet-scenario/1` script path, as written in the file.
    pub scenario: Option<String>,
}

/// A parsed campaign: an ordered batch of jobs under one name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampaignSpec {
    /// Campaign name (default `campaign`).
    pub name: String,
    /// The jobs, in file order (sweeps expanded in seed order).
    pub jobs: Vec<JobSpec>,
}

/// The per-job knobs a `defaults` line can rebind. Seeded with the
/// `manet-sim` CLI defaults so a minimal campaign file means the same
/// thing as a bare `manet-sim` invocation.
#[derive(Clone)]
struct Defaults {
    scheme: String,
    map_units: u32,
    hosts: u32,
    broadcasts: u32,
    seed: u64,
    repeats: u32,
    scenario: Option<String>,
}

impl Default for Defaults {
    fn default() -> Self {
        Defaults {
            scheme: "ac".to_string(),
            map_units: 5,
            hosts: 100,
            broadcasts: 200,
            seed: 1,
            repeats: 1,
            scenario: None,
        }
    }
}

impl CampaignSpec {
    /// Parses the text encoding and validates the result (unique labels,
    /// at least one job, expansion under [`MAX_CAMPAIGN_JOBS`]).
    ///
    /// # Errors
    ///
    /// Returns a [`ScenarioError`] carrying the offending line and column.
    pub fn parse(input: &str) -> Result<CampaignSpec, ScenarioError> {
        let mut name = "campaign".to_string();
        let mut defaults = Defaults::default();
        let mut jobs: Vec<JobSpec> = Vec::new();
        let mut saw_schema = false;
        for (index, raw) in input.lines().enumerate() {
            let line_no = index + 1;
            let code = match raw.find('#') {
                Some(at) => &raw[..at],
                None => raw,
            };
            let fields = fields_with_cols(code);
            let Some(&first) = fields.first() else {
                continue;
            };
            if !saw_schema {
                let line = code.trim();
                if line != CAMPAIGN_SCHEMA {
                    return Err(ScenarioError::at(
                        line_no,
                        first.col,
                        format!("expected schema header {CAMPAIGN_SCHEMA:?}, got {line:?}"),
                    ));
                }
                saw_schema = true;
                continue;
            }
            match first.text {
                "name" => {
                    let [_, value] = fields[..] else {
                        return Err(ScenarioError::at(line_no, first.col, "usage: name <token>"));
                    };
                    name = value.text.to_string();
                }
                "defaults" => {
                    for field in &fields[1..] {
                        let (key, value) = split_binding(*field, line_no)?;
                        apply_binding(&mut defaults, key, value, *field, line_no)?;
                    }
                }
                "job" => {
                    let mut job = defaults.clone();
                    let mut label: Option<String> = None;
                    for field in &fields[1..] {
                        let (key, value) = split_binding(*field, line_no)?;
                        match key {
                            "label" => label = Some(parse_label(value, *field, line_no)?),
                            "seeds" => {
                                return Err(ScenarioError::at(
                                    line_no,
                                    field.col,
                                    "seeds= belongs on a sweep line, not a job",
                                ));
                            }
                            _ => apply_binding(&mut job, key, value, *field, line_no)?,
                        }
                    }
                    let label =
                        label.unwrap_or_else(|| derive_label(jobs.len(), &job.scheme, job.seed));
                    push_job(&mut jobs, &job, label, job.seed, line_no, first)?;
                }
                "sweep" => {
                    let mut job = defaults.clone();
                    let mut prefix: Option<String> = None;
                    let mut seeds: Option<(u64, u64)> = None;
                    for field in &fields[1..] {
                        let (key, value) = split_binding(*field, line_no)?;
                        match key {
                            "label" => prefix = Some(parse_label(value, *field, line_no)?),
                            "seeds" => seeds = Some(parse_seed_range(value, *field, line_no)?),
                            "seed" => {
                                return Err(ScenarioError::at(
                                    line_no,
                                    field.col,
                                    "a sweep takes seeds=A..B, not seed=",
                                ));
                            }
                            _ => apply_binding(&mut job, key, value, *field, line_no)?,
                        }
                    }
                    let Some((lo, hi)) = seeds else {
                        return Err(ScenarioError::at(
                            line_no,
                            first.col,
                            "sweep requires seeds=A..B (or A..=B)",
                        ));
                    };
                    for seed in lo..hi {
                        let label = match &prefix {
                            Some(prefix) => format!("{prefix}_s{seed}"),
                            None => derive_label(jobs.len(), &job.scheme, seed),
                        };
                        push_job(&mut jobs, &job, label, seed, line_no, first)?;
                    }
                }
                directive => {
                    return Err(ScenarioError::at(
                        line_no,
                        first.col,
                        format!("unknown directive {directive:?}"),
                    ));
                }
            }
        }
        if !saw_schema {
            return Err(ScenarioError::new(format!(
                "empty campaign: missing schema header {CAMPAIGN_SCHEMA:?}"
            )));
        }
        if jobs.is_empty() {
            return Err(ScenarioError::new("campaign declares no jobs"));
        }
        let spec = CampaignSpec { name, jobs };
        spec.validate()?;
        Ok(spec)
    }

    /// Checks invariants the parser cannot enforce line-locally: labels
    /// unique and filename-safe, every job's knobs nonzero.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), ScenarioError> {
        if self.jobs.is_empty() {
            return Err(ScenarioError::new("campaign declares no jobs"));
        }
        let mut seen = std::collections::BTreeSet::new();
        for job in &self.jobs {
            if job.label.is_empty() || !job.label.chars().all(is_label_char) {
                return Err(ScenarioError::new(format!(
                    "bad job label {:?} (want [A-Za-z0-9._-]+)",
                    job.label
                )));
            }
            if !seen.insert(job.label.as_str()) {
                return Err(ScenarioError::new(format!(
                    "duplicate job label {:?}",
                    job.label
                )));
            }
            if job.map_units == 0 || job.hosts == 0 || job.broadcasts == 0 || job.repeats == 0 {
                return Err(ScenarioError::new(format!(
                    "job {:?}: map, hosts, broadcasts, and repeats must be nonzero",
                    job.label
                )));
            }
        }
        Ok(())
    }
}

fn is_label_char(c: char) -> bool {
    c.is_ascii_alphanumeric() || matches!(c, '-' | '_' | '.')
}

/// Derives a unique default label from the job's position and identity:
/// `j0007_counter-3_s42`.
fn derive_label(index: usize, scheme: &str, seed: u64) -> String {
    let scheme: String = scheme
        .chars()
        .map(|c| if is_label_char(c) { c } else { '-' })
        .collect();
    format!("j{index:04}_{scheme}_s{seed}")
}

fn push_job(
    jobs: &mut Vec<JobSpec>,
    job: &Defaults,
    label: String,
    seed: u64,
    line_no: usize,
    first: Field<'_>,
) -> Result<(), ScenarioError> {
    if jobs.len() >= MAX_CAMPAIGN_JOBS {
        return Err(ScenarioError::at(
            line_no,
            first.col,
            format!("campaign exceeds {MAX_CAMPAIGN_JOBS} jobs"),
        ));
    }
    jobs.push(JobSpec {
        label,
        scheme: job.scheme.clone(),
        map_units: job.map_units,
        hosts: job.hosts,
        broadcasts: job.broadcasts,
        seed,
        repeats: job.repeats,
        scenario: job.scenario.clone(),
    });
    Ok(())
}

/// Splits one `key=value` token, keeping the field's column for errors.
fn split_binding<'a>(
    field: Field<'a>,
    line_no: usize,
) -> Result<(&'a str, &'a str), ScenarioError> {
    field.text.split_once('=').ok_or_else(|| {
        ScenarioError::at(
            line_no,
            field.col,
            format!("expected key=value, got {:?}", field.text),
        )
    })
}

/// Applies one shared (non-`label`, non-`seeds`) binding to a job or the
/// running defaults.
fn apply_binding(
    job: &mut Defaults,
    key: &str,
    value: &str,
    field: Field<'_>,
    line_no: usize,
) -> Result<(), ScenarioError> {
    let bad = |what: &str| {
        ScenarioError::at(
            line_no,
            field.col,
            format!("bad {key} value {value:?}: {what}"),
        )
    };
    match key {
        "scheme" => {
            if value.is_empty() {
                return Err(bad("empty"));
            }
            job.scheme = value.to_string();
        }
        "map" => job.map_units = value.parse().map_err(|_| bad("want an integer"))?,
        "hosts" => job.hosts = value.parse().map_err(|_| bad("want an integer"))?,
        "broadcasts" => job.broadcasts = value.parse().map_err(|_| bad("want an integer"))?,
        "seed" => job.seed = value.parse().map_err(|_| bad("want an integer"))?,
        "repeats" => job.repeats = value.parse().map_err(|_| bad("want an integer"))?,
        "scenario" => {
            if value.is_empty() {
                return Err(bad("empty path"));
            }
            job.scenario = Some(value.to_string());
        }
        other => {
            return Err(ScenarioError::at(
                line_no,
                field.col,
                format!("unknown key {other:?}"),
            ));
        }
    }
    Ok(())
}

fn parse_label(value: &str, field: Field<'_>, line_no: usize) -> Result<String, ScenarioError> {
    if value.is_empty() || !value.chars().all(is_label_char) {
        return Err(ScenarioError::at(
            line_no,
            field.col,
            format!("bad label {value:?} (want [A-Za-z0-9._-]+)"),
        ));
    }
    Ok(value.to_string())
}

/// Parses `A..B` (half-open) or `A..=B` (inclusive) into a half-open
/// `(lo, hi)` pair with `lo < hi`.
fn parse_seed_range(
    value: &str,
    field: Field<'_>,
    line_no: usize,
) -> Result<(u64, u64), ScenarioError> {
    let bad = |what: &str| {
        ScenarioError::at(
            line_no,
            field.col,
            format!("bad seed range {value:?}: {what}"),
        )
    };
    let (lo, rest) = value
        .split_once("..")
        .ok_or_else(|| bad("want A..B or A..=B"))?;
    let (inclusive, hi) = match rest.strip_prefix('=') {
        Some(hi) => (true, hi),
        None => (false, rest),
    };
    let lo: u64 = lo.parse().map_err(|_| bad("bad lower bound"))?;
    let hi: u64 = hi.parse().map_err(|_| bad("bad upper bound"))?;
    let hi = if inclusive {
        hi.checked_add(1)
            .ok_or_else(|| bad("upper bound overflow"))?
    } else {
        hi
    };
    if lo >= hi {
        return Err(bad("empty range"));
    }
    Ok((lo, hi))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimal_campaign_parses_with_cli_defaults() {
        let spec = CampaignSpec::parse("manet-campaign/1\njob scheme=flooding\n").unwrap();
        assert_eq!(spec.name, "campaign");
        assert_eq!(spec.jobs.len(), 1);
        let job = &spec.jobs[0];
        assert_eq!(
            (
                job.map_units,
                job.hosts,
                job.broadcasts,
                job.seed,
                job.repeats
            ),
            (5, 100, 200, 1, 1)
        );
        assert_eq!(job.label, "j0000_flooding_s1");
    }

    #[test]
    fn defaults_rebind_for_subsequent_lines_only() {
        let spec = CampaignSpec::parse(
            "manet-campaign/1\n\
             job scheme=ac\n\
             defaults map=3 hosts=40 broadcasts=20 repeats=2\n\
             job scheme=nc seed=9\n",
        )
        .unwrap();
        assert_eq!(spec.jobs[0].map_units, 5, "before the defaults line");
        let job = &spec.jobs[1];
        assert_eq!(
            (
                job.map_units,
                job.hosts,
                job.broadcasts,
                job.seed,
                job.repeats
            ),
            (3, 40, 20, 9, 2)
        );
    }

    #[test]
    fn sweep_expands_both_range_spellings() {
        let spec = CampaignSpec::parse(
            "manet-campaign/1\n\
             sweep scheme=ac seeds=1..4\n\
             sweep scheme=nc seeds=10..=12 label=nc\n",
        )
        .unwrap();
        assert_eq!(spec.jobs.len(), 3 + 3);
        assert_eq!(
            spec.jobs.iter().map(|j| j.seed).collect::<Vec<_>>(),
            [1, 2, 3, 10, 11, 12]
        );
        assert_eq!(spec.jobs[3].label, "nc_s10");
        assert_eq!(spec.jobs[0].label, "j0000_ac_s1");
    }

    #[test]
    fn labels_stay_unique_and_filename_safe() {
        let err =
            CampaignSpec::parse("manet-campaign/1\njob scheme=ac label=x\njob scheme=nc label=x\n")
                .unwrap_err();
        assert!(err.message.contains("duplicate"), "{err}");
        let err = CampaignSpec::parse("manet-campaign/1\njob scheme=ac label=a/b\n").unwrap_err();
        assert!(err.message.contains("label"), "{err}");
        // Derived labels sanitize scheme punctuation.
        let spec = CampaignSpec::parse("manet-campaign/1\njob scheme=counter:3 seed=42\n").unwrap();
        assert_eq!(spec.jobs[0].label, "j0000_counter-3_s42");
    }

    #[test]
    fn errors_carry_line_and_column() {
        let err = CampaignSpec::parse("manet-campaign/1\njob scheme=ac map=x\n").unwrap_err();
        assert_eq!((err.line, err.column), (Some(2), Some(15)));
        let err = CampaignSpec::parse("manet-campaign/1\nfrobnicate\n").unwrap_err();
        assert_eq!((err.line, err.column), (Some(2), Some(1)));
        let err = CampaignSpec::parse("manet-campaign/1\njob scheme\n").unwrap_err();
        assert!(err.message.contains("key=value"), "{err}");
    }

    #[test]
    fn misplaced_seed_keys_are_rejected() {
        assert!(CampaignSpec::parse("manet-campaign/1\njob scheme=ac seeds=1..9\n").is_err());
        assert!(CampaignSpec::parse("manet-campaign/1\nsweep scheme=ac seed=4\n").is_err());
        assert!(CampaignSpec::parse("manet-campaign/1\nsweep scheme=ac\n").is_err());
        assert!(CampaignSpec::parse("manet-campaign/1\nsweep scheme=ac seeds=9..9\n").is_err());
        assert!(CampaignSpec::parse("manet-campaign/1\nsweep scheme=ac seeds=9..=8\n").is_err());
    }

    #[test]
    fn header_and_emptiness_are_enforced() {
        assert!(CampaignSpec::parse("").is_err());
        assert!(CampaignSpec::parse("manet-scenario/1\n").is_err());
        let err = CampaignSpec::parse("manet-campaign/1\nname only\n").unwrap_err();
        assert!(err.message.contains("no jobs"), "{err}");
    }

    #[test]
    fn scenario_paths_and_comments_ride_along() {
        let spec = CampaignSpec::parse(
            "# bakeoff\nmanet-campaign/1\nname bake\n\
             job scheme=ac scenario=examples/scenarios/churn_quick.txt # churn\n",
        )
        .unwrap();
        assert_eq!(spec.name, "bake");
        assert_eq!(
            spec.jobs[0].scenario.as_deref(),
            Some("examples/scenarios/churn_quick.txt")
        );
    }
}
