//! JSON encoding of a scenario (`manet-scenario/1`).
//!
//! The document mirrors the text format but carries times as integer
//! nanoseconds, which keeps round-trips exact without a decimal-seconds
//! convention:
//!
//! ```json
//! {
//!   "schema": "manet-scenario/1",
//!   "name": "churn_quick",
//!   "hosts": 100,
//!   "churn": [{"at_ns": 12500000000, "kind": "leave", "host": 5}],
//!   "blackouts": [{"from_ns": 0, "until_ns": 5000000000, "a": 3, "b": 9}],
//!   "noise": [{"from_ns": 0, "until_ns": 5000000000, "drop_probability": 0.25}],
//!   "partitions": [{"from_ns": 0, "until_ns": 1000000000,
//!                   "x0": 0, "y0": 0, "x1": 1000, "y1": 2500}]
//! }
//! ```
//!
//! The parser below is a minimal in-tree recursive-descent JSON reader
//! (the workspace has no third-party dependencies). It accepts arbitrary
//! well-formed JSON; scenario extraction then checks the schema. Number
//! literals are kept as source text so integer nanoseconds parse through
//! `u64`, never losing precision in an `f64`.

use manet_sim_engine::{json_escape, SimTime};

use crate::{ChurnKind, LinkBlackout, NoiseBurst, Partition, Region, Scenario, ScenarioError};

/// A parsed JSON value. Object member order is preserved but irrelevant to
/// scenario extraction.
enum Json {
    Null,
    // The payload is carried for completeness but the scenario schema has
    // no boolean fields, so nothing outside tests reads it.
    Bool(#[allow(dead_code)] bool),
    /// The literal source text of the number (exact-precision extraction).
    Num(String),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Builds a structural (syntax) error carrying the 1-based line and
    /// character column of the current position. `pos` always sits on a
    /// UTF-8 boundary (the reader advances by whole scalars), so the
    /// prefix is valid.
    fn err(&self, message: impl Into<String>) -> ScenarioError {
        let prefix = std::str::from_utf8(&self.bytes[..self.pos]).unwrap_or_default();
        let line = prefix.bytes().filter(|&b| b == b'\n').count() + 1;
        let column = prefix
            .rsplit_once('\n')
            .map_or(prefix, |(_, tail)| tail)
            .chars()
            .count()
            + 1;
        ScenarioError::at(line, column, message)
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    // Named to avoid shadowing `Option::expect`/`Result::expect`: a
    // workspace method called `expect` makes every `.expect("...")` in
    // the workspace ambiguous to simlint's name-based call resolution.
    fn expect_byte(&mut self, byte: u8) -> Result<(), ScenarioError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected {:?}", byte as char)))
        }
    }

    fn eat_literal(&mut self, literal: &str) -> bool {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Json, ScenarioError> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(b't') if self.eat_literal("true") => Ok(Json::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Json::Bool(false)),
            Some(b'n') if self.eat_literal("null") => Ok(Json::Null),
            _ => Err(self.err("expected a value")),
        }
    }

    fn object(&mut self) -> Result<Json, ScenarioError> {
        self.expect_byte(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect_byte(b':')?;
            members.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, ScenarioError> {
        self.expect_byte(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ScenarioError> {
        self.expect_byte(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escape = self.peek().ok_or_else(|| self.err("truncated escape"))?;
                    self.pos += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            // Surrogate pairs are not needed by this schema;
                            // reject rather than mis-decode.
                            let c = char::from_u32(hex)
                                .ok_or_else(|| self.err("unsupported \\u code point"))?;
                            self.pos += 4;
                            out.push(c);
                        }
                        other => return Err(self.err(format!("bad escape '\\{}'", other as char))),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is &str, so valid).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid UTF-8"))?;
                    let c = s.chars().next().expect("non-empty by peek");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, ScenarioError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII digits");
        if text.parse::<f64>().map(f64::is_finite) != Ok(true) {
            return Err(self.err(format!("bad number {text:?}")));
        }
        Ok(Json::Num(text.to_string()))
    }
}

impl Json {
    fn get<'a>(&'a self, key: &str) -> Option<&'a Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(text) => text.parse().ok(),
            _ => None,
        }
    }

    fn as_u32(&self) -> Option<u32> {
        match self {
            Json::Num(text) => text.parse().ok(),
            _ => None,
        }
    }

    fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(text) => text.parse().ok().filter(|v: &f64| v.is_finite()),
            _ => None,
        }
    }

    fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

// Extraction errors carry a JSON pointer (RFC 6901) assembled from the
// section name, array index, and field key: `/churn/0/at_ns`.

fn field<'a>(item: &'a Json, base: &str, key: &str) -> Result<&'a Json, ScenarioError> {
    item.get(key)
        .ok_or_else(|| ScenarioError::at_pointer(format!("{base}/{key}"), "missing field"))
}

fn time_field(item: &Json, base: &str, key: &str) -> Result<SimTime, ScenarioError> {
    field(item, base, key)?
        .as_u64()
        .map(SimTime::from_nanos)
        .ok_or_else(|| {
            ScenarioError::at_pointer(format!("{base}/{key}"), "must be integer nanoseconds")
        })
}

fn u32_field(item: &Json, base: &str, key: &str) -> Result<u32, ScenarioError> {
    field(item, base, key)?
        .as_u32()
        .ok_or_else(|| ScenarioError::at_pointer(format!("{base}/{key}"), "must be a u32"))
}

fn f64_field(item: &Json, base: &str, key: &str) -> Result<f64, ScenarioError> {
    field(item, base, key)?.as_f64().ok_or_else(|| {
        ScenarioError::at_pointer(format!("{base}/{key}"), "must be a finite number")
    })
}

fn section<'a>(root: &'a Json, key: &str) -> Result<&'a [Json], ScenarioError> {
    match root.get(key) {
        None => Ok(&[]),
        Some(value) => value
            .as_arr()
            .ok_or_else(|| ScenarioError::at_pointer(format!("/{key}"), "must be an array")),
    }
}

/// Parses the JSON encoding.
pub(crate) fn parse_scenario(input: &str) -> Result<Scenario, ScenarioError> {
    let mut reader = Reader {
        bytes: input.as_bytes(),
        pos: 0,
    };
    let root = reader.value()?;
    reader.skip_ws();
    if reader.pos != reader.bytes.len() {
        return Err(reader.err("trailing garbage after document"));
    }

    let schema = root
        .get("schema")
        .and_then(Json::as_str)
        .ok_or_else(|| ScenarioError::at_pointer("/schema", "missing field"))?;
    if schema != crate::SCHEMA {
        return Err(ScenarioError::at_pointer(
            "/schema",
            format!(
                "unsupported schema {schema:?} (expected {:?})",
                crate::SCHEMA
            ),
        ));
    }
    let mut scenario = Scenario::new(
        root.get("name")
            .and_then(Json::as_str)
            .unwrap_or("scenario"),
    );
    if let Some(hosts) = root.get("hosts") {
        scenario.hosts = Some(
            hosts
                .as_u32()
                .ok_or_else(|| ScenarioError::at_pointer("/hosts", "must be a u32"))?,
        );
    }
    for (i, item) in section(&root, "churn")?.iter().enumerate() {
        let base = format!("/churn/{i}");
        let label = field(item, &base, "kind")?
            .as_str()
            .ok_or_else(|| ScenarioError::at_pointer(format!("{base}/kind"), "must be a string"))?;
        let kind = ChurnKind::from_label(label).ok_or_else(|| {
            ScenarioError::at_pointer(
                format!("{base}/kind"),
                format!("unknown churn kind {label:?}"),
            )
        })?;
        scenario.churn.push(crate::ChurnEvent {
            at: time_field(item, &base, "at_ns")?,
            kind,
            host: u32_field(item, &base, "host")?,
        });
    }
    for (i, item) in section(&root, "blackouts")?.iter().enumerate() {
        let base = format!("/blackouts/{i}");
        scenario.blackouts.push(LinkBlackout {
            from: time_field(item, &base, "from_ns")?,
            until: time_field(item, &base, "until_ns")?,
            a: u32_field(item, &base, "a")?,
            b: u32_field(item, &base, "b")?,
        });
    }
    for (i, item) in section(&root, "noise")?.iter().enumerate() {
        let base = format!("/noise/{i}");
        scenario.noise.push(NoiseBurst {
            from: time_field(item, &base, "from_ns")?,
            until: time_field(item, &base, "until_ns")?,
            drop_probability: f64_field(item, &base, "drop_probability")?,
        });
    }
    for (i, item) in section(&root, "partitions")?.iter().enumerate() {
        let base = format!("/partitions/{i}");
        scenario.partitions.push(Partition {
            from: time_field(item, &base, "from_ns")?,
            until: time_field(item, &base, "until_ns")?,
            region: Region {
                x0: f64_field(item, &base, "x0")?,
                y0: f64_field(item, &base, "y0")?,
                x1: f64_field(item, &base, "x1")?,
                y1: f64_field(item, &base, "y1")?,
            },
        });
    }
    Ok(scenario)
}

/// Renders the JSON encoding (stable member order, one line).
pub(crate) fn render_scenario(scenario: &Scenario) -> String {
    use crate::text::render_f64 as num;

    let mut out = format!(
        "{{\"schema\":\"{}\",\"name\":\"{}\"",
        crate::SCHEMA,
        json_escape(&scenario.name)
    );
    if let Some(hosts) = scenario.hosts {
        out.push_str(&format!(",\"hosts\":{hosts}"));
    }
    let churn: Vec<String> = scenario
        .churn
        .iter()
        .map(|e| {
            format!(
                "{{\"at_ns\":{},\"kind\":\"{}\",\"host\":{}}}",
                e.at.as_nanos(),
                e.kind.label(),
                e.host
            )
        })
        .collect();
    let blackouts: Vec<String> = scenario
        .blackouts
        .iter()
        .map(|w| {
            format!(
                "{{\"from_ns\":{},\"until_ns\":{},\"a\":{},\"b\":{}}}",
                w.from.as_nanos(),
                w.until.as_nanos(),
                w.a,
                w.b
            )
        })
        .collect();
    let noise: Vec<String> = scenario
        .noise
        .iter()
        .map(|b| {
            format!(
                "{{\"from_ns\":{},\"until_ns\":{},\"drop_probability\":{}}}",
                b.from.as_nanos(),
                b.until.as_nanos(),
                num(b.drop_probability)
            )
        })
        .collect();
    let partitions: Vec<String> = scenario
        .partitions
        .iter()
        .map(|w| {
            format!(
                "{{\"from_ns\":{},\"until_ns\":{},\"x0\":{},\"y0\":{},\"x1\":{},\"y1\":{}}}",
                w.from.as_nanos(),
                w.until.as_nanos(),
                num(w.region.x0),
                num(w.region.y0),
                num(w.region.x1),
                num(w.region.y1)
            )
        })
        .collect();
    out.push_str(&format!(
        ",\"churn\":[{}],\"blackouts\":[{}],\"noise\":[{}],\"partitions\":[{}]}}",
        churn.join(","),
        blackouts.join(","),
        noise.join(","),
        partitions.join(",")
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reader_handles_nesting_strings_and_numbers() {
        let mut r = Reader {
            bytes: br#" {"a": [1, -2.5e1, "x\nA"], "b": {"c": true, "d": null}} "#,
            pos: 0,
        };
        let v = r.value().unwrap();
        let arr = v.get("a").and_then(Json::as_arr).unwrap();
        assert_eq!(arr[0].as_u64(), Some(1));
        assert_eq!(arr[1].as_f64(), Some(-25.0));
        assert_eq!(arr[2].as_str(), Some("x\nA"));
        assert!(matches!(
            v.get("b").and_then(|b| b.get("c")),
            Some(Json::Bool(true))
        ));
        assert!(matches!(
            v.get("b").and_then(|b| b.get("d")),
            Some(Json::Null)
        ));
    }

    #[test]
    fn reader_rejects_malformed_documents() {
        for bad in [
            "{",
            "[1,]",
            "{\"a\" 1}",
            "\"unterminated",
            "{\"a\":nul}",
            "01x",
        ] {
            let mut r = Reader {
                bytes: bad.as_bytes(),
                pos: 0,
            };
            let all_consumed = r.value().is_ok() && r.pos == r.bytes.len();
            assert!(!all_consumed, "{bad:?} should not parse cleanly");
        }
    }

    #[test]
    fn nanosecond_times_survive_u64_precision() {
        // 2^53 + 1 ns is not representable as f64; the raw-text number
        // path must still recover it exactly.
        let ns = (1u64 << 53) + 1;
        let doc = format!(
            "{{\"schema\":\"manet-scenario/1\",\"name\":\"t\",\"churn\":[{{\"at_ns\":{ns},\"kind\":\"leave\",\"host\":0}}]}}"
        );
        let s = parse_scenario(&doc).unwrap();
        assert_eq!(s.churn[0].at.as_nanos(), ns);
    }

    #[test]
    fn schema_field_is_required_and_checked() {
        assert!(parse_scenario("{\"name\":\"x\"}").is_err());
        assert!(parse_scenario("{\"schema\":\"manet-scenario/2\",\"name\":\"x\"}").is_err());
    }

    #[test]
    fn extraction_errors_carry_json_pointers() {
        // Second churn entry has a bad at_ns type.
        let doc = "{\"schema\":\"manet-scenario/1\",\"name\":\"t\",\"churn\":[\
                   {\"at_ns\":1,\"kind\":\"leave\",\"host\":0},\
                   {\"at_ns\":\"soon\",\"kind\":\"join\",\"host\":0}]}";
        let err = parse_scenario(doc).unwrap_err();
        assert_eq!(err.pointer.as_deref(), Some("/churn/1/at_ns"), "{err}");
        assert!(err.to_string().starts_with("at /churn/1/at_ns:"), "{err}");

        let doc = "{\"schema\":\"manet-scenario/1\",\"noise\":[{\"from_ns\":0,\"until_ns\":1}]}";
        let err = parse_scenario(doc).unwrap_err();
        assert_eq!(err.pointer.as_deref(), Some("/noise/0/drop_probability"));
    }

    #[test]
    fn structural_errors_carry_line_and_column() {
        // The stray ']' sits on line 2, column 13 (after 12 characters).
        let err = parse_scenario("{\"schema\":\n \"manet-x\", ]}").unwrap_err();
        assert_eq!((err.line, err.column), (Some(2), Some(13)), "{err}");
        assert_eq!(err.pointer, None);
    }

    #[test]
    fn missing_sections_default_to_empty() {
        let s = parse_scenario("{\"schema\":\"manet-scenario/1\",\"name\":\"bare\"}").unwrap();
        assert_eq!(s.event_count(), 0);
        assert_eq!(s.hosts, None);
    }
}
