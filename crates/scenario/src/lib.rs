//! # manet-scenario
//!
//! Deterministic scenario descriptions for the MANET broadcast simulator.
//!
//! A [`Scenario`] scripts how the world deviates from the paper's fixed,
//! fault-free runs: hosts leave and rejoin (gracefully or by crashing),
//! individual links black out for a window, bursts of packet errors raise
//! the channel loss rate, and a map region is partitioned off for a while.
//! Scenarios are plain data with two on-disk encodings — a line-based text
//! format and a JSON document, both under schema [`SCHEMA`]
//! (`manet-scenario/1`) and both parsed by in-tree code (the workspace has
//! no third-party dependencies).
//!
//! The life cycle is parse → [`validate`] → [`compile`]:
//!
//! * [`Scenario::parse`] accepts either encoding (auto-detected) and
//!   rejects malformed input with a line- or offset-tagged error.
//! * [`validate`] checks the script against a concrete host count: ids in
//!   range, windows well-formed, per-host churn alternation (a host must
//!   be up to leave/crash and down to join/recover, and rejoins must match
//!   how the host went down), and that the active population never drops
//!   to zero (the workload needs a source to issue broadcasts from).
//! * [`compile`] flattens everything into a
//!   [`Timeline`](manet_sim_engine::Timeline) of [`WorldAction`]s — one
//!   entry per churn event, two (start/end) per fault window — that the
//!   world schedules onto its main event queue at start-up.
//!
//! Determinism: parsing, validation, and compilation are pure functions of
//! the input text, and times round-trip exactly (text timestamps are
//! decimal seconds with at most nanosecond precision; JSON carries integer
//! nanoseconds).
//!
//! [`validate`]: Scenario::validate
//! [`compile`]: Scenario::compile
//!
//! # Examples
//!
//! ```
//! use manet_scenario::Scenario;
//!
//! let text = "\
//! manet-scenario/1
//! name demo
//! hosts 10
//! at 4 crash 3
//! at 9.5 recover 3
//! from 2 until 6 noise 0.2
//! ";
//! let scenario = Scenario::parse(text).unwrap();
//! scenario.validate(10).unwrap();
//! assert_eq!(scenario.compile().len(), 4); // crash, recover, noise on/off
//! assert_eq!(Scenario::parse(&scenario.to_text()).unwrap(), scenario);
//! assert_eq!(Scenario::parse(&scenario.to_json()).unwrap(), scenario);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod campaign;
mod json;
mod text;

use std::error::Error;
use std::fmt;

use manet_sim_engine::{SimTime, Timeline};

pub use campaign::{CampaignSpec, JobSpec, CAMPAIGN_SCHEMA, MAX_CAMPAIGN_JOBS};

/// Schema identifier, the first line of the text format and the `schema`
/// field of the JSON document.
pub const SCHEMA: &str = "manet-scenario/1";

/// An axis-aligned map region in meters, used by partition faults.
///
/// Membership is inclusive on all four edges.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Region {
    /// West edge (meters).
    pub x0: f64,
    /// South edge (meters).
    pub y0: f64,
    /// East edge (meters); must exceed `x0`.
    pub x1: f64,
    /// North edge (meters); must exceed `y0`.
    pub y1: f64,
}

impl Region {
    /// `true` when the point lies inside the region (edges inclusive).
    pub fn contains(&self, x: f64, y: f64) -> bool {
        self.x0 <= x && x <= self.x1 && self.y0 <= y && y <= self.y1
    }
}

/// How a host's membership changes at one instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChurnKind {
    /// Graceful departure: the radio goes quiet but the host keeps its
    /// protocol state for a later [`Join`](ChurnKind::Join).
    Leave,
    /// Return from a [`Leave`](ChurnKind::Leave) with state intact.
    Join,
    /// Abrupt failure: the radio goes quiet and all protocol state
    /// (neighbor tables, packet memory) is lost.
    Crash,
    /// Reboot after a [`Crash`](ChurnKind::Crash) with blank state.
    Recover,
}

impl ChurnKind {
    /// The keyword used by both on-disk encodings.
    pub fn label(self) -> &'static str {
        match self {
            ChurnKind::Leave => "leave",
            ChurnKind::Join => "join",
            ChurnKind::Crash => "crash",
            ChurnKind::Recover => "recover",
        }
    }

    pub(crate) fn from_label(label: &str) -> Option<Self> {
        match label {
            "leave" => Some(ChurnKind::Leave),
            "join" => Some(ChurnKind::Join),
            "crash" => Some(ChurnKind::Crash),
            "recover" => Some(ChurnKind::Recover),
            _ => None,
        }
    }
}

/// One scripted membership change.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChurnEvent {
    /// When the change takes effect.
    pub at: SimTime,
    /// What happens.
    pub kind: ChurnKind,
    /// The affected host id (index into the world's host array).
    pub host: u32,
}

/// A window during which one specific link delivers nothing.
///
/// Both directions of the `a`–`b` link are cut; frames still occupy the
/// medium (carrier sense is unaffected), they just arrive undecodable —
/// the semantics of a deep fade, not of increased range.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkBlackout {
    /// Window start (inclusive).
    pub from: SimTime,
    /// Window end (exclusive); must exceed `from`.
    pub until: SimTime,
    /// One endpoint host id.
    pub a: u32,
    /// The other endpoint host id.
    pub b: u32,
}

/// A window during which every reception is independently lost with the
/// given probability, on top of any configured base drop rate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NoiseBurst {
    /// Window start (inclusive).
    pub from: SimTime,
    /// Window end (exclusive); must exceed `from`.
    pub until: SimTime,
    /// Per-reception loss probability in `(0, 1]`.
    pub drop_probability: f64,
}

/// A window during which links crossing a region boundary are cut.
///
/// While active, a frame is lost at any listener on the opposite side of
/// the region edge from the sender (one endpoint inside, one outside,
/// judged by current positions). Traffic wholly inside or wholly outside
/// the region is unaffected, so the region keeps working internally — it
/// is partitioned off, not destroyed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Partition {
    /// Window start (inclusive).
    pub from: SimTime,
    /// Window end (exclusive); must exceed `from`.
    pub until: SimTime,
    /// The partitioned-off region.
    pub region: Region,
}

/// A parsed scenario: a name, an optional host count, and the scripted
/// events grouped by kind (each group in declaration order).
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Scenario name (a single whitespace-free token).
    pub name: String,
    /// Host count the script was written for, if declared. Used as the
    /// default `--hosts` by runners; [`validate`] checks ids against the
    /// count actually simulated.
    ///
    /// [`validate`]: Scenario::validate
    pub hosts: Option<u32>,
    /// Membership changes.
    pub churn: Vec<ChurnEvent>,
    /// Per-link blackout windows.
    pub blackouts: Vec<LinkBlackout>,
    /// Packet-error bursts.
    pub noise: Vec<NoiseBurst>,
    /// Region partitions.
    pub partitions: Vec<Partition>,
}

/// One compiled world event: what the simulation applies at an instant.
///
/// Churn events compile one-to-one; each fault window compiles into a
/// start/end pair carrying enough payload for the world to match the end
/// against the start (faults of the same shape may overlap).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WorldAction {
    /// Host leaves gracefully.
    Leave {
        /// Affected host id.
        host: u32,
    },
    /// Host returns from a graceful leave.
    Join {
        /// Affected host id.
        host: u32,
    },
    /// Host crashes, losing protocol state.
    Crash {
        /// Affected host id.
        host: u32,
    },
    /// Host reboots after a crash.
    Recover {
        /// Affected host id.
        host: u32,
    },
    /// A link blackout window opens.
    BlackoutStart {
        /// One endpoint host id.
        a: u32,
        /// The other endpoint host id.
        b: u32,
    },
    /// A link blackout window closes.
    BlackoutEnd {
        /// One endpoint host id.
        a: u32,
        /// The other endpoint host id.
        b: u32,
    },
    /// A noise burst begins.
    NoiseStart {
        /// Per-reception loss probability.
        drop_probability: f64,
    },
    /// A noise burst ends.
    NoiseEnd {
        /// Per-reception loss probability (matches the start).
        drop_probability: f64,
    },
    /// A region partition begins.
    PartitionStart {
        /// The partitioned region.
        region: Region,
    },
    /// A region partition heals.
    PartitionEnd {
        /// The partitioned region (matches the start).
        region: Region,
    },
}

/// A parse or validation failure, tagged with where in the source it
/// happened: a 1-based line (and, for token-level errors, column) in the
/// text encoding, or a JSON pointer (RFC 6901) into the JSON document.
/// Validation errors describe the script as a whole and carry no
/// location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScenarioError {
    /// 1-based line of the offending text, when known. For JSON input
    /// this is set only by structural (syntax) errors.
    pub line: Option<usize>,
    /// 1-based character column of the offending token, when known.
    /// Always accompanied by [`line`](ScenarioError::line).
    pub column: Option<usize>,
    /// JSON pointer to the offending value (e.g. `/churn/0/at_ns`), set
    /// by extraction errors on JSON input.
    pub pointer: Option<String>,
    /// What went wrong.
    pub message: String,
}

impl ScenarioError {
    pub(crate) fn new(message: impl Into<String>) -> Self {
        ScenarioError {
            line: None,
            column: None,
            pointer: None,
            message: message.into(),
        }
    }

    pub(crate) fn at(line: usize, column: usize, message: impl Into<String>) -> Self {
        ScenarioError {
            line: Some(line),
            column: Some(column),
            pointer: None,
            message: message.into(),
        }
    }

    pub(crate) fn at_pointer(pointer: impl Into<String>, message: impl Into<String>) -> Self {
        ScenarioError {
            line: None,
            column: None,
            pointer: Some(pointer.into()),
            message: message.into(),
        }
    }
}

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(pointer) = &self.pointer {
            return write!(f, "at {pointer}: {}", self.message);
        }
        match (self.line, self.column) {
            (Some(line), Some(column)) => {
                write!(f, "line {line}, column {column}: {}", self.message)
            }
            (Some(line), None) => write!(f, "line {line}: {}", self.message),
            _ => f.write_str(&self.message),
        }
    }
}

impl Error for ScenarioError {}

/// Per-host membership used by churn validation.
#[derive(Clone, Copy, PartialEq, Eq)]
enum HostState {
    Up,
    DownLeft,
    DownCrashed,
}

impl Scenario {
    /// An empty scenario with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        Scenario {
            name: name.into(),
            hosts: None,
            churn: Vec::new(),
            blackouts: Vec::new(),
            noise: Vec::new(),
            partitions: Vec::new(),
        }
    }

    /// Sets the declared host count (builder style).
    pub fn with_hosts(mut self, hosts: u32) -> Self {
        self.hosts = Some(hosts);
        self
    }

    /// Appends a membership change (builder style).
    pub fn churn(mut self, at: SimTime, kind: ChurnKind, host: u32) -> Self {
        self.churn.push(ChurnEvent { at, kind, host });
        self
    }

    /// Appends a link blackout window (builder style).
    pub fn blackout(mut self, from: SimTime, until: SimTime, a: u32, b: u32) -> Self {
        self.blackouts.push(LinkBlackout { from, until, a, b });
        self
    }

    /// Appends a noise burst (builder style).
    pub fn noise(mut self, from: SimTime, until: SimTime, drop_probability: f64) -> Self {
        self.noise.push(NoiseBurst {
            from,
            until,
            drop_probability,
        });
        self
    }

    /// Appends a region partition window (builder style).
    pub fn partition(mut self, from: SimTime, until: SimTime, region: Region) -> Self {
        self.partitions.push(Partition {
            from,
            until,
            region,
        });
        self
    }

    /// Parses either on-disk encoding, auto-detected: input whose first
    /// non-whitespace byte is `{` is treated as JSON, anything else as the
    /// line-based text format.
    pub fn parse(input: &str) -> Result<Scenario, ScenarioError> {
        if input.trim_start().starts_with('{') {
            json::parse_scenario(input)
        } else {
            text::parse_scenario(input)
        }
    }

    /// Renders the canonical text encoding. `parse(to_text(s)) == s` for
    /// every parseable scenario.
    pub fn to_text(&self) -> String {
        text::render_scenario(self)
    }

    /// Renders the JSON encoding. `parse(to_json(s)) == s` for every
    /// parseable scenario.
    pub fn to_json(&self) -> String {
        json::render_scenario(self)
    }

    /// Total scripted declarations (churn events plus fault windows).
    pub fn event_count(&self) -> usize {
        self.churn.len() + self.blackouts.len() + self.noise.len() + self.partitions.len()
    }

    /// Checks the script against a concrete host count.
    ///
    /// Rules enforced beyond basic field sanity: churn must alternate per
    /// host (`leave`/`crash` only while up, `join` only after a `leave`,
    /// `recover` only after a `crash`), evaluated in compiled time order;
    /// and the active population must never reach zero, so the workload
    /// always has a source to issue broadcasts from.
    pub fn validate(&self, hosts: u32) -> Result<(), ScenarioError> {
        if hosts == 0 {
            return Err(ScenarioError::new("scenario requires at least one host"));
        }
        if self.name.is_empty() || self.name.chars().any(char::is_whitespace) {
            return Err(ScenarioError::new(format!(
                "scenario name {:?} must be a non-empty, whitespace-free token",
                self.name
            )));
        }
        if let Some(declared) = self.hosts {
            if declared != hosts {
                return Err(ScenarioError::new(format!(
                    "scenario declares {declared} hosts but the run has {hosts}"
                )));
            }
        }
        for event in &self.churn {
            if event.host >= hosts {
                return Err(ScenarioError::new(format!(
                    "churn host {} out of range (run has {hosts} hosts)",
                    event.host
                )));
            }
        }
        for window in &self.blackouts {
            if window.a >= hosts || window.b >= hosts {
                return Err(ScenarioError::new(format!(
                    "blackout link {}-{} out of range (run has {hosts} hosts)",
                    window.a, window.b
                )));
            }
            if window.a == window.b {
                return Err(ScenarioError::new(format!(
                    "blackout link endpoints must differ (got {}-{})",
                    window.a, window.b
                )));
            }
            if window.from >= window.until {
                return Err(ScenarioError::new(format!(
                    "blackout window must start before it ends ({} >= {})",
                    window.from, window.until
                )));
            }
        }
        for burst in &self.noise {
            if burst.from >= burst.until {
                return Err(ScenarioError::new(format!(
                    "noise window must start before it ends ({} >= {})",
                    burst.from, burst.until
                )));
            }
            if !(burst.drop_probability > 0.0 && burst.drop_probability <= 1.0) {
                return Err(ScenarioError::new(format!(
                    "noise drop probability must lie in (0, 1], got {}",
                    burst.drop_probability
                )));
            }
        }
        for window in &self.partitions {
            if window.from >= window.until {
                return Err(ScenarioError::new(format!(
                    "partition window must start before it ends ({} >= {})",
                    window.from, window.until
                )));
            }
            let r = window.region;
            if !(r.x0.is_finite() && r.y0.is_finite() && r.x1.is_finite() && r.y1.is_finite()) {
                return Err(ScenarioError::new("partition region must be finite"));
            }
            if r.x0 >= r.x1 || r.y0 >= r.y1 {
                return Err(ScenarioError::new(format!(
                    "partition region must have positive extent (got {} {} {} {})",
                    r.x0, r.y0, r.x1, r.y1
                )));
            }
        }

        // Replay churn in compiled (time, declaration) order: alternation
        // per host, and at least one active host at every instant.
        let mut ordered: Vec<&ChurnEvent> = self.churn.iter().collect();
        ordered.sort_by_key(|event| event.at);
        let mut states: std::collections::BTreeMap<u32, HostState> =
            std::collections::BTreeMap::new();
        let mut down = 0u32;
        for event in ordered {
            let state = states.entry(event.host).or_insert(HostState::Up);
            match event.kind {
                ChurnKind::Leave | ChurnKind::Crash => {
                    if *state != HostState::Up {
                        return Err(ScenarioError::new(format!(
                            "host {} {}s at {} while already down",
                            event.host,
                            event.kind.label(),
                            event.at
                        )));
                    }
                    *state = if event.kind == ChurnKind::Leave {
                        HostState::DownLeft
                    } else {
                        HostState::DownCrashed
                    };
                    down += 1;
                    if down >= hosts {
                        return Err(ScenarioError::new(format!(
                            "all {hosts} hosts are down at {} — the workload needs a source",
                            event.at
                        )));
                    }
                }
                ChurnKind::Join => {
                    if *state != HostState::DownLeft {
                        return Err(ScenarioError::new(format!(
                            "host {} joins at {} without a prior leave",
                            event.host, event.at
                        )));
                    }
                    *state = HostState::Up;
                    down -= 1;
                }
                ChurnKind::Recover => {
                    if *state != HostState::DownCrashed {
                        return Err(ScenarioError::new(format!(
                            "host {} recovers at {} without a prior crash",
                            event.host, event.at
                        )));
                    }
                    *state = HostState::Up;
                    down -= 1;
                }
            }
        }
        Ok(())
    }

    /// Flattens the script into a time-sorted [`Timeline`] of
    /// [`WorldAction`]s: one entry per churn event, a start/end pair per
    /// fault window. Ties keep declaration order (churn first, then
    /// blackouts, noise, partitions).
    pub fn compile(&self) -> Timeline<WorldAction> {
        let mut entries: Vec<(SimTime, WorldAction)> =
            Vec::with_capacity(self.churn.len() + 2 * (self.event_count() - self.churn.len()));
        for event in &self.churn {
            let action = match event.kind {
                ChurnKind::Leave => WorldAction::Leave { host: event.host },
                ChurnKind::Join => WorldAction::Join { host: event.host },
                ChurnKind::Crash => WorldAction::Crash { host: event.host },
                ChurnKind::Recover => WorldAction::Recover { host: event.host },
            };
            entries.push((event.at, action));
        }
        for window in &self.blackouts {
            let (a, b) = (window.a, window.b);
            entries.push((window.from, WorldAction::BlackoutStart { a, b }));
            entries.push((window.until, WorldAction::BlackoutEnd { a, b }));
        }
        for burst in &self.noise {
            let drop_probability = burst.drop_probability;
            entries.push((burst.from, WorldAction::NoiseStart { drop_probability }));
            entries.push((burst.until, WorldAction::NoiseEnd { drop_probability }));
        }
        for window in &self.partitions {
            let region = window.region;
            entries.push((window.from, WorldAction::PartitionStart { region }));
            entries.push((window.until, WorldAction::PartitionEnd { region }));
        }
        Timeline::new(entries)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn secs(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    fn sample() -> Scenario {
        Scenario::new("sample")
            .with_hosts(10)
            .churn(secs(4), ChurnKind::Crash, 3)
            .churn(secs(9), ChurnKind::Recover, 3)
            .churn(secs(5), ChurnKind::Leave, 7)
            .churn(secs(12), ChurnKind::Join, 7)
            .blackout(secs(2), secs(6), 0, 1)
            .noise(secs(3), secs(8), 0.25)
            .partition(
                secs(10),
                secs(11),
                Region {
                    x0: 0.0,
                    y0: 0.0,
                    x1: 100.0,
                    y1: 200.0,
                },
            )
    }

    #[test]
    fn sample_validates_and_compiles() {
        let s = sample();
        s.validate(10).unwrap();
        let timeline = s.compile();
        // 4 churn entries + 2 per window * 3 windows.
        assert_eq!(timeline.len(), 10);
        let times: Vec<SimTime> = timeline.iter().map(|(at, _)| at).collect();
        assert!(times.windows(2).all(|w| w[0] <= w[1]), "sorted: {times:?}");
        assert_eq!(
            timeline.get(0),
            (secs(2), &WorldAction::BlackoutStart { a: 0, b: 1 })
        );
    }

    #[test]
    fn validate_rejects_out_of_range_and_double_down() {
        let s = sample();
        assert!(s.validate(5).is_err(), "host 7 out of range for 5 hosts");
        let double = Scenario::new("x")
            .churn(secs(1), ChurnKind::Leave, 0)
            .churn(secs(2), ChurnKind::Crash, 0);
        assert!(double.validate(4).is_err());
    }

    #[test]
    fn validate_requires_matching_rejoin_kind() {
        let mismatch = Scenario::new("x")
            .churn(secs(1), ChurnKind::Crash, 0)
            .churn(secs(2), ChurnKind::Join, 0);
        let err = mismatch.validate(4).unwrap_err();
        assert!(err.message.contains("without a prior leave"), "{err}");
    }

    #[test]
    fn validate_rejects_extinction() {
        let s = Scenario::new("x")
            .churn(secs(1), ChurnKind::Leave, 0)
            .churn(secs(2), ChurnKind::Crash, 1);
        let err = s.validate(2).unwrap_err();
        assert!(err.message.contains("needs a source"), "{err}");
        // Same script is fine with a third host standing by.
        s.validate(3).unwrap();
    }

    #[test]
    fn validate_rejects_declared_host_mismatch() {
        let s = Scenario::new("x").with_hosts(10);
        assert!(s.validate(10).is_ok());
        assert!(s.validate(20).is_err());
    }

    #[test]
    fn validate_rejects_degenerate_windows() {
        let bad_window = Scenario::new("x").noise(secs(5), secs(5), 0.5);
        assert!(bad_window.validate(2).is_err());
        let bad_probability = Scenario::new("x").noise(secs(1), secs(2), 0.0);
        assert!(bad_probability.validate(2).is_err());
        let self_link = Scenario::new("x").blackout(secs(1), secs(2), 1, 1);
        assert!(self_link.validate(2).is_err());
        let thin_region = Scenario::new("x").partition(
            secs(1),
            secs(2),
            Region {
                x0: 5.0,
                y0: 0.0,
                x1: 5.0,
                y1: 10.0,
            },
        );
        assert!(thin_region.validate(2).is_err());
    }

    #[test]
    fn region_contains_is_edge_inclusive() {
        let r = Region {
            x0: 0.0,
            y0: 0.0,
            x1: 10.0,
            y1: 5.0,
        };
        assert!(r.contains(0.0, 0.0));
        assert!(r.contains(10.0, 5.0));
        assert!(!r.contains(10.1, 5.0));
    }
}
