//! Property-based tests of the DCF state machine: drive it through
//! random but causal environments and check its contract.
//!
//! Invariants checked:
//! * the MAC never emits two `BeginTx` without a `on_tx_end` in between
//!   (half-duplex at the MAC layer);
//! * every timer it arms has a positive delay;
//! * once the medium goes idle for good, every queued frame is
//!   eventually transmitted (no lost frames, no deadlock);
//! * frames transmit in FIFO order.

use manet_mac::{frame_airtime, Dcf, FrameHandle, MacAction};
use manet_sim_engine::{SimDuration, SimRng, SimTime};
use manet_testkit::{prop_check, Gen};

/// One random environment step.
#[derive(Debug, Clone, Copy)]
enum Step {
    /// Enqueue the next frame.
    Enqueue,
    /// Busy period of the given length in µs.
    Busy(u64),
    /// Let the given time in µs pass quietly.
    Quiet(u64),
}

fn steps(g: &mut Gen) -> Vec<Step> {
    g.vec(1..25, |g| match g.usize_in(0..3) {
        0 => Step::Enqueue,
        1 => Step::Busy(g.u64_in(100..5_000)),
        _ => Step::Quiet(g.u64_in(100..5_000)),
    })
}

/// Drives the MAC through `steps`, then lets the medium stay idle until
/// the machine drains. Returns the transmitted frame order.
fn drive(seed: u64, steps: &[Step]) -> Vec<FrameHandle> {
    let mut mac = Dcf::new(SimRng::seed_from(seed));
    let mut now = SimTime::from_millis(1);
    let mut next_handle = 0u64;
    let mut transmitted = Vec::new();
    // At most one armed timer is live at a time (newer generations
    // supersede older ones).
    let mut timer: Option<(SimTime, u64)> = None;

    let apply = |mac: &mut Dcf,
                 action: Option<MacAction>,
                 now: &mut SimTime,
                 timer: &mut Option<(SimTime, u64)>,
                 transmitted: &mut Vec<FrameHandle>| {
        let mut pending = action;
        while let Some(action) = pending.take() {
            match action {
                MacAction::StartTimer { delay, generation } => {
                    assert!(!delay.is_zero(), "zero-delay timer");
                    *timer = Some((*now + delay, generation));
                }
                MacAction::BeginTx {
                    handle,
                    payload_bytes,
                } => {
                    assert!(mac.is_transmitting(), "BeginTx without tx state");
                    transmitted.push(handle);
                    // The frame occupies the air; finish it immediately
                    // (the machine only needs the completion callback).
                    *now += frame_airtime(payload_bytes);
                    pending = mac.on_tx_end(*now);
                }
            }
        }
    };

    // Helper: run any due timer at or before `now`.
    macro_rules! run_due_timers {
        ($deadline:expr) => {
            while let Some((at, generation)) = timer {
                if at > $deadline {
                    break;
                }
                timer = None;
                now = now.max(at);
                let actions = mac.on_timer(generation, at);
                apply(&mut mac, actions, &mut now, &mut timer, &mut transmitted);
            }
        };
    }

    for &step in steps {
        match step {
            Step::Enqueue => {
                let handle = FrameHandle(next_handle);
                next_handle += 1;
                let actions = mac.enqueue(handle, 280, now);
                apply(&mut mac, actions, &mut now, &mut timer, &mut transmitted);
            }
            Step::Busy(us) => {
                let actions = mac.on_medium_busy(now);
                apply(&mut mac, actions, &mut now, &mut timer, &mut transmitted);
                now += SimDuration::from_micros(us);
                let actions = mac.on_medium_idle(now);
                apply(&mut mac, actions, &mut now, &mut timer, &mut transmitted);
            }
            Step::Quiet(us) => {
                let deadline = now + SimDuration::from_micros(us);
                run_due_timers!(deadline);
                now = now.max(deadline);
            }
        }
    }
    // Drain: idle forever, run all timers.
    run_due_timers!(SimTime::MAX);
    assert_eq!(mac.queue_len(), 0, "queued frames left behind");
    assert!(!mac.is_transmitting());
    transmitted
}

prop_check! {
    /// All enqueued frames transmit, exactly once, in FIFO order.
    fn frames_all_transmit_in_order(g, cases = 256) {
        let seed = g.u64();
        let steps = steps(g);
        let enqueued = steps.iter().filter(|s| matches!(s, Step::Enqueue)).count();
        let transmitted = drive(seed, &steps);
        assert_eq!(transmitted.len(), enqueued);
        for (i, handle) in transmitted.iter().enumerate() {
            assert_eq!(*handle, FrameHandle(i as u64), "FIFO violated");
        }
    }

    /// The machine is deterministic: same seed and steps, same behaviour.
    fn machine_is_deterministic(g, cases = 256) {
        let seed = g.u64();
        let steps = steps(g);
        let a = drive(seed, &steps);
        let b = drive(seed, &steps);
        assert_eq!(a, b);
    }
}
