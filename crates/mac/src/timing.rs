//! IEEE 802.11 DSSS physical-layer timing, as fixed in the paper's §4.
//!
//! > "the transmission rate (1M bits per second), and the DSSS physical
//! > layer timing (backoff window size = 31 ~ 1,023 slots, slot time =
//! > 20 µsec, SIFS = 10 µsec, DIFS = 50 µsec, PLCP preamble = 144 µsec,
//! > and header length = 48 µsec, as suggested in IEEE 802.11)."
//!
//! Broadcast frames are transmitted once with no acknowledgment and no
//! retry, so the contention window never grows past its initial
//! [`CW_MIN`] = 31 slots.

use manet_sim_engine::SimDuration;

/// One backoff slot: 20 µs.
pub const SLOT: SimDuration = SimDuration::from_micros(20);

/// Short interframe space: 10 µs.
pub const SIFS: SimDuration = SimDuration::from_micros(10);

/// DCF interframe space: 50 µs.
pub const DIFS: SimDuration = SimDuration::from_micros(50);

/// PLCP preamble: 144 µs at the DSSS long-preamble rate.
pub const PLCP_PREAMBLE: SimDuration = SimDuration::from_micros(144);

/// PLCP header: 48 µs.
pub const PLCP_HEADER: SimDuration = SimDuration::from_micros(48);

/// Initial (and, for broadcast, only) contention window: backoff counters
/// are drawn uniformly from `0..=CW_MIN`.
pub const CW_MIN: u32 = 31;

/// Maximum contention window after repeated retries (unused for
/// broadcast, provided for completeness).
pub const CW_MAX: u32 = 1_023;

/// Channel bit rate: 1 Mb/s.
pub const BIT_RATE_BPS: u64 = 1_000_000;

/// The paper's broadcast packet size: 280 bytes.
pub const PAPER_PACKET_BYTES: usize = 280;

/// Time a frame of `payload_bytes` occupies the air: PLCP preamble +
/// PLCP header + payload serialization at [`BIT_RATE_BPS`].
///
/// # Examples
///
/// ```
/// use manet_mac::frame_airtime;
/// use manet_sim_engine::SimDuration;
///
/// // The paper's 280-byte packet: 144 + 48 + 2240 µs = 2432 µs.
/// assert_eq!(frame_airtime(280), SimDuration::from_micros(2_432));
/// ```
pub fn frame_airtime(payload_bytes: usize) -> SimDuration {
    let bits = payload_bytes as u64 * 8;
    let serialize_nanos = bits * 1_000_000_000 / BIT_RATE_BPS;
    PLCP_PREAMBLE + PLCP_HEADER + SimDuration::from_nanos(serialize_nanos)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_packet_airtime() {
        assert_eq!(
            frame_airtime(PAPER_PACKET_BYTES),
            SimDuration::from_micros(2_432)
        );
    }

    #[test]
    fn airtime_scales_with_size() {
        let small = frame_airtime(50);
        let large = frame_airtime(100);
        assert_eq!(
            (large - small).as_micros(),
            50 * 8, // 400 extra bits at 1 Mb/s = 400 µs
        );
    }

    #[test]
    fn zero_payload_is_plcp_only() {
        assert_eq!(frame_airtime(0), PLCP_PREAMBLE + PLCP_HEADER);
    }

    #[test]
    fn constants_match_paper() {
        assert_eq!(SLOT.as_micros(), 20);
        assert_eq!(SIFS.as_micros(), 10);
        assert_eq!(DIFS.as_micros(), 50);
        assert_eq!(CW_MIN, 31);
        assert_eq!(CW_MAX, 1_023);
    }
}
