//! # manet-mac
//!
//! An IEEE 802.11 DCF medium-access layer for **broadcast** frames, as a
//! pure state machine ([`Dcf`]): carrier-sense deferral, DIFS waiting,
//! slotted backoff with freezing, and post-transmission backoff — with no
//! RTS/CTS, no acknowledgments, and no retransmissions, exactly the MAC
//! regime the broadcast-storm paper analyzes (§2.2.3).
//!
//! The state machine communicates with its environment exclusively through
//! timestamped inputs and returned [`MacAction`]s, so all DCF rules are
//! unit-tested without a channel. [`timing`] collects the paper's DSSS
//! constants (20 µs slots, DIFS 50 µs, contention window 31, 1 Mb/s) and
//! the [`frame_airtime`] formula (280-byte packet → 2 432 µs on the air).
//!
//! # Examples
//!
//! ```
//! use manet_mac::{frame_airtime, Dcf, FrameHandle, MacAction};
//! use manet_sim_engine::{SimRng, SimTime};
//!
//! let mut mac = Dcf::new(SimRng::seed_from(7));
//! let now = SimTime::from_millis(1); // medium idle since t=0 (> DIFS)
//! match mac.enqueue(FrameHandle(1), 280, now) {
//!     Some(MacAction::BeginTx { handle, payload_bytes }) => {
//!         assert_eq!(handle, FrameHandle(1));
//!         // The wiring puts the frame on the air for its airtime…
//!         let done = now + frame_airtime(payload_bytes);
//!         // …and reports back when it ends.
//!         let _post_backoff = mac.on_tx_end(done);
//!     }
//!     _ => unreachable!(),
//! }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod dcf;
pub mod timing;

pub use dcf::{Dcf, FrameHandle, MacAction, MacStats};
pub use timing::frame_airtime;
