//! The DCF broadcast state machine.
//!
//! One [`Dcf`] instance models one host's MAC. It is a *pure* state
//! machine: every input carries the current time and returns at most one
//! [`MacAction`] for the simulation wiring to execute (arm a timer, put a
//! frame on the air). The machine never talks to a channel directly, which
//! makes every DCF rule unit-testable in isolation. Carrier-sense and
//! timer inputs run hundreds of thousands of times per simulation, so the
//! return type is a plain `Option` — no per-call allocation.
//!
//! ## Rules implemented (paper §2.2.3 / IEEE 802.11 DCF, broadcast only)
//!
//! * A frame may be transmitted immediately if the medium has been idle
//!   for at least DIFS and no backoff is pending.
//! * A host wanting to transmit while the medium is busy (or that just
//!   finished a transmission — *post-backoff*) draws a backoff counter
//!   uniformly from `0..=CW_MIN` and counts it down in slot units, but
//!   only while the medium has been idle for DIFS; the counter freezes
//!   whenever the medium goes busy.
//! * Broadcast frames get no acknowledgment and no retry, so the
//!   contention window never doubles.
//! * Queued frames can be cancelled until the moment they hit the air
//!   (the suppression schemes' step S5).

use manet_sim_engine::{SimDuration, SimRng, SimTime, WireDecoder, WireEncoder, WireError};

use crate::timing::{CW_MIN, DIFS, SLOT};

/// Upper-layer handle for a queued frame, echoed back in
/// [`MacAction::BeginTx`] so the wiring can find the payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FrameHandle(pub u64);

/// A side effect requested by the state machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MacAction {
    /// Arm a timer to call [`Dcf::on_timer`] with this generation after
    /// `delay`. Only the latest generation is live; stale firings are
    /// ignored, so the wiring never needs to cancel timers.
    StartTimer {
        /// Time from now until the timer fires.
        delay: SimDuration,
        /// Generation token to pass back to [`Dcf::on_timer`].
        generation: u64,
    },
    /// Put the frame on the air now, for `airtime`. The wiring must call
    /// [`Dcf::on_tx_end`] when the airtime elapses.
    BeginTx {
        /// The frame to transmit.
        handle: FrameHandle,
        /// Payload size in bytes (echoed from [`Dcf::enqueue`]).
        payload_bytes: usize,
    },
}

/// Counters one [`Dcf`] keeps about its own operation.
///
/// Pure bookkeeping — nothing here feeds back into the state machine, so
/// the counters can be read (or merged across hosts) at any point without
/// perturbing determinism.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MacStats {
    /// Backoff counters drawn (post-transmission or deferral).
    pub backoff_draws: u64,
    /// Sum of all drawn backoff counters, in slots.
    pub backoff_slots_total: u64,
    /// Backoff countdowns frozen by the medium going busy.
    pub freezes: u64,
    /// Deferrals: transmission attempts pushed into backoff because the
    /// medium was busy at enqueue or interrupted the DIFS wait.
    pub deferrals: u64,
    /// Frames accepted into the transmit queue.
    pub enqueued: u64,
    /// Frames removed from the queue by [`Dcf::cancel`] before airing.
    pub cancelled: u64,
    /// Largest transmit-queue depth observed.
    pub max_queue_depth: u64,
    /// Per-value draw counts: `draw_counts[s]` is how many backoff draws
    /// came out as `s` slots, for `s` in `0..=CW_MIN`.
    pub draw_counts: [u64; (CW_MIN + 1) as usize],
}

impl Default for MacStats {
    fn default() -> Self {
        MacStats {
            backoff_draws: 0,
            backoff_slots_total: 0,
            freezes: 0,
            deferrals: 0,
            enqueued: 0,
            cancelled: 0,
            max_queue_depth: 0,
            draw_counts: [0; (CW_MIN + 1) as usize],
        }
    }
}

impl MacStats {
    /// Serializes the counters for a world snapshot.
    pub fn snapshot_into(&self, enc: &mut WireEncoder) {
        enc.u64(self.backoff_draws);
        enc.u64(self.backoff_slots_total);
        enc.u64(self.freezes);
        enc.u64(self.deferrals);
        enc.u64(self.enqueued);
        enc.u64(self.cancelled);
        enc.u64(self.max_queue_depth);
        for &count in &self.draw_counts {
            enc.u64(count);
        }
    }

    /// Decodes counters written by [`snapshot_into`](Self::snapshot_into).
    pub fn restore_snapshot(dec: &mut WireDecoder<'_>) -> Result<MacStats, WireError> {
        let mut stats = MacStats {
            backoff_draws: dec.u64()?,
            backoff_slots_total: dec.u64()?,
            freezes: dec.u64()?,
            deferrals: dec.u64()?,
            enqueued: dec.u64()?,
            cancelled: dec.u64()?,
            max_queue_depth: dec.u64()?,
            draw_counts: [0; (CW_MIN + 1) as usize],
        };
        for count in &mut stats.draw_counts {
            *count = dec.u64()?;
        }
        Ok(stats)
    }

    /// Folds another host's counters into this one (max for
    /// `max_queue_depth`, sums elsewhere).
    pub fn merge(&mut self, other: &MacStats) {
        self.backoff_draws += other.backoff_draws;
        self.backoff_slots_total += other.backoff_slots_total;
        self.freezes += other.freezes;
        self.deferrals += other.deferrals;
        self.enqueued += other.enqueued;
        self.cancelled += other.cancelled;
        self.max_queue_depth = self.max_queue_depth.max(other.max_queue_depth);
        for (mine, theirs) in self.draw_counts.iter_mut().zip(&other.draw_counts) {
            *mine += theirs;
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    /// Nothing to do.
    Idle,
    /// Want the channel (frame queued and/or post-backoff pending) but the
    /// medium is busy; waiting for it to go idle.
    WaitIdle,
    /// DIFS timer running; medium idle so far.
    Difs,
    /// Backoff countdown timer running; medium idle.
    Backoff {
        /// When the countdown started (for freezing).
        started: SimTime,
        /// Counter value at `started`, in slots.
        slots: u32,
    },
    /// Own frame on the air.
    Transmitting,
}

/// One host's DCF MAC for broadcast frames.
///
/// # Examples
///
/// ```
/// use manet_mac::{Dcf, FrameHandle, MacAction};
/// use manet_sim_engine::{SimRng, SimTime};
///
/// let mut mac = Dcf::new(SimRng::seed_from(1));
/// // Medium idle since time zero: an enqueue after DIFS transmits at once.
/// let now = SimTime::from_millis(1);
/// let action = mac.enqueue(FrameHandle(0), 280, now);
/// assert!(matches!(action, Some(MacAction::BeginTx { .. })));
/// ```
#[derive(Debug)]
pub struct Dcf {
    state: State,
    queue: std::collections::VecDeque<(FrameHandle, usize)>,
    /// Frozen backoff counter, if a backoff is in progress or pending.
    backoff_slots: Option<u32>,
    /// Medium busy according to carrier sense (foreign signals only).
    medium_busy: bool,
    /// Start of the current idle period, when `!medium_busy`.
    idle_since: SimTime,
    /// Live timer generation; stale timer firings are ignored.
    generation: u64,
    rng: SimRng,
    /// Frames handed to the air (statistics).
    transmitted: u64,
    stats: MacStats,
}

impl Dcf {
    /// Creates an idle MAC whose medium is idle since time zero.
    pub fn new(rng: SimRng) -> Self {
        Dcf {
            state: State::Idle,
            queue: std::collections::VecDeque::new(),
            backoff_slots: None,
            medium_busy: false,
            idle_since: SimTime::ZERO,
            generation: 0,
            rng,
            transmitted: 0,
            stats: MacStats::default(),
        }
    }

    /// Frames put on the air so far.
    pub fn transmitted_count(&self) -> u64 {
        self.transmitted
    }

    /// Operation counters accumulated so far.
    pub fn stats(&self) -> &MacStats {
        &self.stats
    }

    /// Frames waiting in the queue.
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// `true` while this host's own frame is on the air.
    pub fn is_transmitting(&self) -> bool {
        self.state == State::Transmitting
    }

    /// Queues a frame for transmission.
    pub fn enqueue(
        &mut self,
        handle: FrameHandle,
        payload_bytes: usize,
        now: SimTime,
    ) -> Option<MacAction> {
        self.queue.push_back((handle, payload_bytes));
        self.stats.enqueued += 1;
        self.stats.max_queue_depth = self.stats.max_queue_depth.max(self.queue.len() as u64);
        match self.state {
            State::Idle => {
                if self.medium_busy {
                    // Deferral: a busy medium at arrival forces a backoff.
                    self.stats.deferrals += 1;
                    self.ensure_backoff();
                    self.state = State::WaitIdle;
                    None
                } else {
                    debug_assert!(self.backoff_slots.is_none());
                    let idle_for = now.saturating_duration_since(self.idle_since);
                    if idle_for >= DIFS {
                        Some(self.begin_tx(now))
                    } else {
                        // Wait out the remainder of DIFS.
                        self.state = State::Difs;
                        Some(self.arm_timer(DIFS - idle_for))
                    }
                }
            }
            // Machinery already running; the frame waits its turn.
            State::WaitIdle | State::Difs | State::Backoff { .. } | State::Transmitting => None,
        }
    }

    /// Removes a queued frame before it reaches the air.
    ///
    /// Returns `true` if the frame was still queued. A frame already on
    /// the air (or already transmitted) cannot be cancelled.
    pub fn cancel(&mut self, handle: FrameHandle) -> bool {
        let before = self.queue.len();
        self.queue.retain(|&(h, _)| h != handle);
        let removed = before != self.queue.len();
        if removed {
            self.stats.cancelled += 1;
        }
        removed
    }

    /// Carrier sense reports the medium busy (a foreign frame started).
    pub fn on_medium_busy(&mut self, now: SimTime) -> Option<MacAction> {
        if self.medium_busy {
            return None; // duplicate report; wiring coalesces, but be safe
        }
        self.medium_busy = true;
        match self.state {
            State::Idle | State::WaitIdle | State::Transmitting => None,
            State::Difs => {
                // DIFS interrupted: this counts as a deferral, so a backoff
                // is required when the medium frees up.
                self.generation += 1; // invalidate the DIFS timer
                self.stats.deferrals += 1;
                self.ensure_backoff();
                self.state = State::WaitIdle;
                None
            }
            State::Backoff { started, slots } => {
                // Freeze: whole slots that elapsed are consumed.
                self.generation += 1; // invalidate the countdown timer
                self.stats.freezes += 1;
                let elapsed = now.saturating_duration_since(started);
                let consumed = (elapsed.as_nanos() / SLOT.as_nanos()) as u32;
                self.backoff_slots = Some(slots.saturating_sub(consumed));
                self.state = State::WaitIdle;
                None
            }
        }
    }

    /// Carrier sense reports the medium idle (the last foreign frame
    /// ended).
    pub fn on_medium_idle(&mut self, now: SimTime) -> Option<MacAction> {
        if !self.medium_busy {
            return None;
        }
        self.medium_busy = false;
        self.idle_since = now;
        match self.state {
            State::WaitIdle => {
                self.state = State::Difs;
                Some(self.arm_timer(DIFS))
            }
            State::Idle | State::Transmitting => None,
            State::Difs | State::Backoff { .. } => {
                unreachable!("timer states imply an idle medium")
            }
        }
    }

    /// A timer armed by a previous [`MacAction::StartTimer`] fired.
    ///
    /// Stale generations (from timers superseded by a state change) are
    /// ignored and return no action.
    pub fn on_timer(&mut self, generation: u64, now: SimTime) -> Option<MacAction> {
        if generation != self.generation {
            return None;
        }
        match self.state {
            State::Difs => {
                debug_assert!(!self.medium_busy);
                match self.backoff_slots {
                    Some(0) => self.finish_backoff(now),
                    Some(slots) => {
                        self.state = State::Backoff {
                            started: now,
                            slots,
                        };
                        Some(self.arm_timer(SLOT * u64::from(slots)))
                    }
                    None => {
                        if self.queue.is_empty() {
                            self.state = State::Idle;
                            None
                        } else {
                            Some(self.begin_tx(now))
                        }
                    }
                }
            }
            State::Backoff { .. } => {
                self.backoff_slots = Some(0);
                self.finish_backoff(now)
            }
            State::Idle | State::WaitIdle | State::Transmitting => {
                unreachable!("live timer fired in state {:?}", self.state)
            }
        }
    }

    /// The frame started by [`MacAction::BeginTx`] finished its airtime.
    pub fn on_tx_end(&mut self, now: SimTime) -> Option<MacAction> {
        assert_eq!(
            self.state,
            State::Transmitting,
            "tx end without a transmission"
        );
        // Post-backoff: always back off after transmitting (paper §2.2.3).
        self.ensure_backoff();
        if self.medium_busy {
            self.state = State::WaitIdle;
            None
        } else {
            // Own transmission is not carrier: the idle period (for DIFS
            // accounting) starts now.
            self.idle_since = now;
            self.state = State::Difs;
            Some(self.arm_timer(DIFS))
        }
    }

    /// Serializes the complete MAC state — state machine, transmit queue,
    /// frozen backoff, carrier view, timer generation, RNG stream, and
    /// counters — for a world snapshot.
    pub fn snapshot_into(&self, enc: &mut WireEncoder) {
        match self.state {
            State::Idle => enc.u8(0),
            State::WaitIdle => enc.u8(1),
            State::Difs => enc.u8(2),
            State::Backoff { started, slots } => {
                enc.u8(3);
                enc.u64(started.as_nanos());
                enc.u32(slots);
            }
            State::Transmitting => enc.u8(4),
        }
        enc.len(self.queue.len());
        for &(handle, bytes) in &self.queue {
            enc.u64(handle.0);
            enc.usize(bytes);
        }
        match self.backoff_slots {
            None => enc.bool(false),
            Some(slots) => {
                enc.bool(true);
                enc.u32(slots);
            }
        }
        enc.bool(self.medium_busy);
        enc.u64(self.idle_since.as_nanos());
        enc.u64(self.generation);
        for word in self.rng.state() {
            enc.u64(word);
        }
        enc.u64(self.transmitted);
        self.stats.snapshot_into(enc);
    }

    /// Rebuilds a MAC from [`snapshot_into`](Self::snapshot_into) output.
    pub fn restore_snapshot(dec: &mut WireDecoder<'_>) -> Result<Dcf, WireError> {
        let tag_at = dec.position();
        let state = match dec.u8()? {
            0 => State::Idle,
            1 => State::WaitIdle,
            2 => State::Difs,
            3 => State::Backoff {
                started: SimTime::from_nanos(dec.u64()?),
                slots: dec.u32()?,
            },
            4 => State::Transmitting,
            _ => {
                return Err(WireError {
                    at: tag_at,
                    what: "DCF state tag",
                })
            }
        };
        let queue_len = dec.len()?;
        let mut queue = std::collections::VecDeque::with_capacity(queue_len);
        for _ in 0..queue_len {
            let handle = FrameHandle(dec.u64()?);
            let bytes = dec.usize()?;
            queue.push_back((handle, bytes));
        }
        let backoff_slots = if dec.bool()? { Some(dec.u32()?) } else { None };
        let medium_busy = dec.bool()?;
        let idle_since = SimTime::from_nanos(dec.u64()?);
        let generation = dec.u64()?;
        let mut rng_state = [0u64; 4];
        for word in &mut rng_state {
            *word = dec.u64()?;
        }
        let transmitted = dec.u64()?;
        let stats = MacStats::restore_snapshot(dec)?;
        Ok(Dcf {
            state,
            queue,
            backoff_slots,
            medium_busy,
            idle_since,
            generation,
            rng: SimRng::from_state(rng_state),
            transmitted,
            stats,
        })
    }

    /// Draws a post/deferral backoff counter if none is pending.
    fn ensure_backoff(&mut self) {
        if self.backoff_slots.is_none() {
            let slots = self.rng.gen_range_u32(0..CW_MIN + 1);
            self.stats.backoff_draws += 1;
            self.stats.backoff_slots_total += u64::from(slots);
            self.stats.draw_counts[slots as usize] += 1;
            self.backoff_slots = Some(slots);
        }
    }

    /// Backoff counter hit zero with the medium idle.
    fn finish_backoff(&mut self, now: SimTime) -> Option<MacAction> {
        self.backoff_slots = None;
        if self.queue.is_empty() {
            self.state = State::Idle;
            None
        } else {
            Some(self.begin_tx(now))
        }
    }

    fn begin_tx(&mut self, _now: SimTime) -> MacAction {
        let (handle, payload_bytes) = self
            .queue
            .pop_front()
            .expect("begin_tx requires a queued frame");
        self.state = State::Transmitting;
        self.transmitted += 1;
        MacAction::BeginTx {
            handle,
            payload_bytes,
        }
    }

    fn arm_timer(&mut self, delay: SimDuration) -> MacAction {
        self.generation += 1;
        MacAction::StartTimer {
            delay,
            generation: self.generation,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timing::frame_airtime;

    fn mac() -> Dcf {
        Dcf::new(SimRng::seed_from(42))
    }

    /// Drives a single timer action to completion, returning the follow-up
    /// action and the fire time.
    fn fire_timer(
        mac: &mut Dcf,
        action: Option<MacAction>,
        now: SimTime,
    ) -> (Option<MacAction>, SimTime) {
        match action {
            Some(MacAction::StartTimer { delay, generation }) => {
                let at = now + delay;
                (mac.on_timer(generation, at), at)
            }
            other => panic!("expected a StartTimer, got {other:?}"),
        }
    }

    #[test]
    fn idle_long_enough_transmits_immediately() {
        let mut m = mac();
        let now = SimTime::from_millis(5); // idle since 0 >> DIFS
        let action = m.enqueue(FrameHandle(1), 280, now);
        assert_eq!(
            action,
            Some(MacAction::BeginTx {
                handle: FrameHandle(1),
                payload_bytes: 280
            })
        );
        assert!(m.is_transmitting());
    }

    #[test]
    fn fresh_idle_waits_out_difs() {
        let mut m = mac();
        // Medium just went idle at t=1ms.
        m.medium_busy = true;
        let t_idle = SimTime::from_millis(1);
        m.on_medium_idle(t_idle);
        let t_enq = t_idle + SimDuration::from_micros(10);
        let action = m.enqueue(FrameHandle(1), 280, t_enq);
        // 10 of the 50 µs DIFS have elapsed; wait the remaining 40.
        match action {
            Some(MacAction::StartTimer { delay, generation }) => {
                assert_eq!(delay, SimDuration::from_micros(40));
                let fire = t_enq + delay;
                let next = m.on_timer(generation, fire);
                assert!(matches!(next, Some(MacAction::BeginTx { .. })));
            }
            other => panic!("unexpected action {other:?}"),
        }
    }

    #[test]
    fn busy_medium_defers_then_backs_off() {
        let mut m = mac();
        let t0 = SimTime::from_millis(1);
        m.on_medium_busy(t0);
        let action = m.enqueue(FrameHandle(1), 280, t0);
        assert!(action.is_none(), "must wait for idle");
        // Medium goes idle: DIFS first.
        let t1 = t0 + SimDuration::from_micros(500);
        let action = m.on_medium_idle(t1);
        let (action, t2) = fire_timer(&mut m, action, t1);
        // After DIFS, a backoff countdown runs (deferral draws a counter).
        match action {
            Some(MacAction::StartTimer { delay, generation }) => {
                assert_eq!(delay.as_nanos() % SLOT.as_nanos(), 0, "whole slots");
                let fire = t2 + delay;
                let next = m.on_timer(generation, fire);
                assert!(matches!(next, Some(MacAction::BeginTx { .. })));
            }
            Some(MacAction::BeginTx { .. }) => {
                // Counter happened to be zero: legal.
            }
            other => panic!("unexpected action {other:?}"),
        }
    }

    #[test]
    fn backoff_freezes_and_resumes() {
        // Force a known backoff by seeding: find a seed with slots >= 2.
        let mut m = Dcf::new(SimRng::seed_from(3));
        let t0 = SimTime::from_millis(1);
        m.on_medium_busy(t0);
        m.enqueue(FrameHandle(1), 280, t0);
        let t1 = t0 + SimDuration::from_micros(100);
        let action = m.on_medium_idle(t1);
        let (action, t2) = fire_timer(&mut m, action, t1); // DIFS done
        let (total_slots, gen) = match action {
            Some(MacAction::StartTimer { delay, generation }) => {
                ((delay.as_nanos() / SLOT.as_nanos()) as u32, generation)
            }
            _ => return, // zero backoff: nothing to freeze, covered elsewhere
        };
        if total_slots < 2 {
            return;
        }
        // Medium goes busy after exactly one slot: freeze with slots-1 left.
        let t3 = t2 + SLOT;
        assert!(m.on_medium_busy(t3).is_none());
        // The frozen timer must now be stale.
        assert!(m.on_timer(gen, t3 + SLOT).is_none());
        // Idle again: DIFS, then the *remaining* slots.
        let t4 = t3 + SimDuration::from_micros(300);
        let action = m.on_medium_idle(t4);
        let (action, _t5) = fire_timer(&mut m, action, t4);
        match action {
            Some(MacAction::StartTimer { delay, .. }) => {
                let remaining = (delay.as_nanos() / SLOT.as_nanos()) as u32;
                assert_eq!(remaining, total_slots - 1, "one slot was consumed");
            }
            other => panic!("unexpected action {other:?}"),
        }
    }

    #[test]
    fn post_backoff_runs_after_tx() {
        let mut m = mac();
        let t0 = SimTime::from_millis(5);
        let action = m.enqueue(FrameHandle(1), 280, t0);
        assert!(matches!(action, Some(MacAction::BeginTx { .. })));
        let t1 = t0 + frame_airtime(280);
        let action = m.on_tx_end(t1);
        // Post-backoff: DIFS timer starts even with an empty queue.
        assert!(matches!(action, Some(MacAction::StartTimer { .. })));
        assert!(!m.is_transmitting());
    }

    #[test]
    fn second_frame_waits_for_post_backoff() {
        let mut m = mac();
        let t0 = SimTime::from_millis(5);
        m.enqueue(FrameHandle(1), 280, t0);
        let t1 = t0 + frame_airtime(280);
        let difs_action = m.on_tx_end(t1);
        // Enqueue during post-backoff DIFS: no immediate transmission.
        let action = m.enqueue(FrameHandle(2), 280, t1);
        assert!(action.is_none());
        // Run DIFS then (possibly zero) backoff; frame 2 eventually sends.
        let (action, t2) = fire_timer(&mut m, difs_action, t1);
        let final_action = match action {
            Some(MacAction::StartTimer { delay, generation }) => m.on_timer(generation, t2 + delay),
            Some(MacAction::BeginTx { .. }) => action,
            other => panic!("unexpected {other:?}"),
        };
        match final_action {
            Some(MacAction::BeginTx { handle, .. }) => assert_eq!(handle, FrameHandle(2)),
            other => panic!("expected BeginTx, got {other:?}"),
        }
    }

    #[test]
    fn cancel_removes_queued_frame() {
        let mut m = mac();
        let t0 = SimTime::from_millis(1);
        m.on_medium_busy(t0); // park the frame in the queue
        m.enqueue(FrameHandle(7), 280, t0);
        assert_eq!(m.queue_len(), 1);
        assert!(m.cancel(FrameHandle(7)));
        assert_eq!(m.queue_len(), 0);
        assert!(!m.cancel(FrameHandle(7)), "double cancel is false");
        // Medium idles; DIFS+backoff complete with nothing to send.
        let t1 = t0 + SimDuration::from_micros(100);
        let action = m.on_medium_idle(t1);
        let (action, t2) = fire_timer(&mut m, action, t1);
        match action {
            None => {} // no backoff pending and queue empty
            Some(MacAction::StartTimer { delay, generation }) => {
                let after = m.on_timer(generation, t2 + delay);
                assert!(after.is_none(), "nothing to transmit after cancel");
            }
            Some(MacAction::BeginTx { .. }) => panic!("cancelled frame transmitted"),
        }
        assert_eq!(m.transmitted_count(), 0);
    }

    #[test]
    fn on_air_frame_cannot_be_cancelled() {
        let mut m = mac();
        let t0 = SimTime::from_millis(5);
        m.enqueue(FrameHandle(1), 280, t0);
        assert!(m.is_transmitting());
        assert!(!m.cancel(FrameHandle(1)));
        assert_eq!(m.transmitted_count(), 1);
    }

    #[test]
    fn stats_count_draws_deferrals_and_cancels() {
        let mut m = mac();
        let t0 = SimTime::from_millis(1);
        m.on_medium_busy(t0);
        // Busy at enqueue: a deferral that draws a backoff counter.
        m.enqueue(FrameHandle(1), 280, t0);
        let s = *m.stats();
        assert_eq!(s.enqueued, 1);
        assert_eq!(s.deferrals, 1);
        assert_eq!(s.backoff_draws, 1);
        assert_eq!(s.draw_counts.iter().sum::<u64>(), 1);
        assert_eq!(s.max_queue_depth, 1);
        // Cancel it while still queued.
        assert!(m.cancel(FrameHandle(1)));
        assert_eq!(m.stats().cancelled, 1);
    }

    #[test]
    fn stats_count_freezes() {
        // Find a seed whose first draw has slots >= 2 so the countdown can
        // actually be interrupted.
        let mut m = Dcf::new(SimRng::seed_from(3));
        let t0 = SimTime::from_millis(1);
        m.on_medium_busy(t0);
        m.enqueue(FrameHandle(1), 280, t0);
        let t1 = t0 + SimDuration::from_micros(100);
        let action = m.on_medium_idle(t1);
        let (action, t2) = fire_timer(&mut m, action, t1);
        if !matches!(action, Some(MacAction::StartTimer { .. })) {
            return; // zero backoff with this seed
        }
        m.on_medium_busy(t2 + SLOT);
        assert_eq!(m.stats().freezes, 1);
    }

    #[test]
    fn stats_merge_sums_and_maxes() {
        let mut a = MacStats {
            backoff_draws: 1,
            backoff_slots_total: 3,
            max_queue_depth: 2,
            ..MacStats::default()
        };
        a.draw_counts[3] = 1;
        let mut b = MacStats {
            backoff_draws: 2,
            backoff_slots_total: 5,
            freezes: 1,
            max_queue_depth: 5,
            ..MacStats::default()
        };
        b.draw_counts[3] = 1;
        b.draw_counts[2] = 1;
        a.merge(&b);
        assert_eq!(a.backoff_draws, 3);
        assert_eq!(a.backoff_slots_total, 8);
        assert_eq!(a.freezes, 1);
        assert_eq!(a.max_queue_depth, 5);
        assert_eq!(a.draw_counts[3], 2);
        assert_eq!(a.draw_counts[2], 1);
    }

    #[test]
    fn stale_timers_are_ignored() {
        let mut m = mac();
        assert!(m.on_timer(999, SimTime::from_millis(1)).is_none());
    }

    #[test]
    fn duplicate_carrier_reports_are_harmless() {
        let mut m = mac();
        let t0 = SimTime::from_millis(1);
        assert!(m.on_medium_busy(t0).is_none());
        assert!(m.on_medium_busy(t0).is_none());
        assert!(m.on_medium_idle(t0 + SLOT).is_none());
        assert!(m.on_medium_idle(t0 + SLOT).is_none());
    }
}
