//! Campaign-server benchmarks: the batch throughput the `manet-sim
//! serve` mode is judged by, measured in-process so the numbers isolate
//! the scheduler and protocol from transport and process startup.
//!
//! One iteration of the scheduler benches runs a whole campaign of
//! small jobs through [`run_campaign`] into a sink — admission, the
//! worker-pool fan-out, metrics rendering, and MCMP framing included.
//! `BENCH_campaign.json` at the workspace root records the trajectory;
//! `BENCH_campaign_baseline.json` is the `bench_gate` reference.

use std::hint::black_box;
use std::sync::Mutex;

use broadcast_core::CancelToken;
use manet_bench::harness::Suite;
use manet_campaign::{run_campaign, CampaignQueue, FrameWriter, JobEnvelope, QueuedCampaign};
use manet_sim_engine::{WireEncoder, WorkerPool};

/// The scheduler workload: small jobs (the sweep shape campaigns are
/// for), all valid, cycling seeds so no two jobs share an RNG stream.
fn small_jobs(count: u64) -> Vec<JobEnvelope> {
    (0..count)
        .map(|i| JobEnvelope {
            label: format!("j{i}"),
            scheme: "counter:3".into(),
            map_units: 1,
            hosts: 10,
            broadcasts: 2,
            seed: 1 + i,
            repeats: 1,
            scenario: None,
        })
        .collect()
}

/// A full campaign per iteration, streamed into a sink: jobs/sec of the
/// serve path minus the transport. Worker counts bracket the executor —
/// 0 is the inline (no threads) floor, 2 the smallest real fan-out.
fn scheduler_throughput(s: &mut Suite) {
    for (name, workers) in [
        ("campaign/sched_50jobs_inline", 0usize),
        ("campaign/sched_50jobs_2workers", 2),
    ] {
        let pool = WorkerPool::new(workers);
        let jobs = small_jobs(50);
        s.bench(name, move || {
            let campaign = QueuedCampaign {
                id: 1,
                name: "bench".into(),
                jobs: jobs.clone(),
                cancel: CancelToken::new(),
            };
            let writer = Mutex::new(FrameWriter::new(std::io::sink()).expect("sink header"));
            let counts = run_campaign(&campaign, &pool, &writer).expect("sink write");
            assert_eq!(counts.completed, 50);
            black_box(counts)
        });
    }
}

/// Admission control alone: submit a 1000-job campaign and drain it,
/// without running anything. This is the queue overhead a submit pays
/// before the first job starts.
fn queue_admission(s: &mut Suite) {
    let jobs = small_jobs(1_000);
    s.bench("campaign/queue_submit_drain_1000jobs", move || {
        let queue = CampaignQueue::new(2_000);
        let id = queue
            .submit("bench".into(), jobs.clone())
            .expect("capacity");
        queue.close();
        let campaign = queue.pop().expect("one campaign");
        queue.finish(campaign.id);
        black_box((id, campaign.jobs.len()))
    });
}

/// Protocol overhead: encode and decode one metrics frame with a
/// realistic (~2 KiB) payload — the per-job cost MCMP framing adds on
/// top of the simulation itself.
fn frame_roundtrip(s: &mut Suite) {
    use manet_campaign::Frame;
    let frame = Frame::JobMetrics {
        campaign: 1,
        job: 17,
        label: "j17".into(),
        payload: vec![b'x'; 2_048],
    };
    s.bench("campaign/mcmp_metrics_frame_roundtrip", move || {
        let mut enc = WireEncoder::new();
        frame.encode(&mut enc);
        let decoded = Frame::decode(enc.as_slice()).expect("roundtrip");
        black_box(decoded)
    });
}

fn main() {
    let mut suite = Suite::from_args("campaign");
    scheduler_throughput(&mut suite);
    queue_admission(&mut suite);
    frame_roundtrip(&mut suite);
    suite.finish();
}
