//! End-to-end simulation benchmarks: one full broadcast-storm run per
//! iteration, at the paper's host density (100 hosts) on the 5×5 map.
//!
//! These are the numbers the hot-path work is judged by: they exercise
//! the whole event loop — mobility, carrier sense, DCF, the shared
//! medium, and the scheme layer — rather than any single substrate.
//! `BENCH_world.json` at the workspace root records the trajectory;
//! `BENCH_world_baseline.json` is the reference the `bench_gate` tool
//! compares against (CI runs it on the quick pass), refreshed whenever
//! a PR moves performance deliberately.

use std::hint::black_box;

use broadcast_core::{SchemeSpec, SimConfig, World};
use manet_bench::harness::Suite;

/// One broadcast-storm run: 100 hosts on the 5×5 map, 12 broadcast
/// requests, fixed seed.
fn storm_config(scheme: SchemeSpec) -> SimConfig {
    SimConfig::builder(5, scheme)
        .hosts(100)
        .broadcasts(12)
        .seed(11)
        .build()
}

fn storm(s: &mut Suite, name: &str, scheme: SchemeSpec) {
    s.bench(name, || {
        let report = World::new(storm_config(scheme.clone())).run();
        black_box((report.data_frames, report.collisions))
    });
}

/// The large-scale point: 1000 hosts on the same map (10× the paper's
/// density, ~125 neighbors each). Oracle neighbor info keeps the run
/// about the event loop rather than HELLO parsing, and fewer broadcasts
/// keep one iteration in the same ballpark as the 100-host runs.
fn large_storm(s: &mut Suite) {
    for shards in [1u32, 4] {
        let name = if shards == 1 {
            "world/counter_c3_5x5_1000hosts"
        } else {
            "world/counter_c3_5x5_1000hosts_4shards"
        };
        s.bench(name, move || {
            let config = SimConfig::builder(5, SchemeSpec::Counter(3))
                .hosts(1_000)
                .broadcasts(4)
                .neighbor_info(broadcast_core::NeighborInfo::Oracle)
                .seed(11)
                .shards(shards)
                .build();
            let report = World::new(config).run();
            black_box((report.data_frames, report.collisions))
        });
    }
}

/// The scale the sharded executor exists for: 10⁴ hosts on the 10×10 map
/// (a wide map, so the strip partition actually narrows the geometry
/// window). Same seed/scheme discipline as the 1000-host point. Four
/// entries bracket the executors: sequential, 8 byte-identical strips,
/// 8 strips drained in parallel epochs (`--parallel-epochs`) on the
/// auto-detected pool, and the same run pinned to 2 workers — the first
/// multi-core configuration recorded for the epoch executor.
fn huge_storm(s: &mut Suite) {
    for (name, shards, parallel, workers) in [
        ("world/counter_c3_10x10_10000hosts", 1u32, false, None),
        (
            "world/counter_c3_10x10_10000hosts_8shards_lockstep",
            8,
            false,
            None,
        ),
        ("world/counter_c3_10x10_10000hosts_8shards", 8, true, None),
        (
            "world/counter_c3_10x10_10000hosts_8shards_2workers",
            8,
            true,
            Some(2u32),
        ),
    ] {
        s.bench(name, move || {
            let mut builder = SimConfig::builder(10, SchemeSpec::Counter(3))
                .hosts(10_000)
                .broadcasts(2)
                .neighbor_info(broadcast_core::NeighborInfo::Oracle)
                .seed(11)
                .shards(shards)
                .parallel_epochs(parallel);
            if let Some(workers) = workers {
                builder = builder.workers(workers);
            }
            let config = builder.build();
            let report = World::new(config).run();
            black_box((report.data_frames, report.collisions))
        });
    }
}

fn main() {
    let mut suite = Suite::from_args("world");
    storm(
        &mut suite,
        "world/flooding_5x5_100hosts",
        SchemeSpec::Flooding,
    );
    storm(
        &mut suite,
        "world/counter_c3_5x5_100hosts",
        SchemeSpec::Counter(3),
    );
    storm(
        &mut suite,
        "world/nc_5x5_100hosts",
        SchemeSpec::NeighborCoverage,
    );
    large_storm(&mut suite);
    huge_storm(&mut suite);
    suite.finish();
}
