//! One benchmark per reproduced paper figure.
//!
//! Each bench runs a *scaled-down* version of the computation behind the
//! corresponding figure (fewer broadcasts, fewer hosts, one or two maps),
//! so a benchmark suite pass stays in the minutes. The full-size
//! regeneration is `manet-experiments <fig> --scale full`.

use std::hint::black_box;

use broadcast_core::{AreaThreshold, CounterThreshold, NeighborInfo, SchemeSpec, SimConfig, World};
use manet_bench::harness::Suite;
use manet_bench::{mini_config, mini_run};
use manet_geom::{contention_free_distribution, expected_additional_coverage};
use manet_net::{DynamicHelloParams, HelloIntervalPolicy};
use manet_sim_engine::{SimDuration, SimRng};

fn fig01_eac(s: &mut Suite) {
    s.bench("fig01_eac_k6", || {
        let mut rng = SimRng::seed_from(1);
        black_box(expected_additional_coverage(6, 50, 300, &mut rng))
    });
}

fn fig02_contention(s: &mut Suite) {
    s.bench("fig02_cf_n8", || {
        let mut rng = SimRng::seed_from(2);
        black_box(contention_free_distribution(8, 2_000, &mut rng))
    });
}

fn fig05_tuning(s: &mut Suite) {
    // One candidate C(n) on one sparse map: the unit of the Fig. 5 sweep.
    s.bench("fig05_ac_candidate_7x7", || {
        black_box(mini_run(
            7,
            SchemeSpec::AdaptiveCounter(CounterThreshold::ramp(1)),
            3,
        ))
    });
}

fn fig07_ac(s: &mut Suite) {
    s.bench("fig07/counter_fixed_c2_5x5", || {
        black_box(mini_run(5, SchemeSpec::Counter(2), 4))
    });
    s.bench("fig07/adaptive_counter_5x5", || {
        black_box(mini_run(
            5,
            SchemeSpec::AdaptiveCounter(CounterThreshold::paper_recommended()),
            4,
        ))
    });
}

fn fig10_al(s: &mut Suite) {
    s.bench("fig10/location_fixed_5x5", || {
        black_box(mini_run(5, SchemeSpec::Location(0.0134), 5))
    });
    s.bench("fig10/adaptive_location_5x5", || {
        black_box(mini_run(
            5,
            SchemeSpec::AdaptiveLocation(AreaThreshold::paper_recommended()),
            5,
        ))
    });
}

fn fig11_hello_interval(s: &mut Suite) {
    // NC with a long fixed hello interval on a sparse map: the unit of
    // the Fig. 11 staleness sweep.
    s.bench("fig11_nc_hi10s_9x9", || {
        let mut config = mini_config(9, SchemeSpec::NeighborCoverage, 6);
        config.neighbor_info =
            NeighborInfo::Hello(HelloIntervalPolicy::Fixed(SimDuration::from_secs(10)));
        black_box(World::new(config).run())
    });
}

fn fig12_dhi(s: &mut Suite) {
    s.bench("fig12_nc_dhi_7x7", || {
        let mut config = mini_config(7, SchemeSpec::NeighborCoverage, 7);
        config.neighbor_info =
            NeighborInfo::Hello(HelloIntervalPolicy::Dynamic(DynamicHelloParams::paper()));
        black_box(World::new(config).run())
    });
}

fn fig13_overall(s: &mut Suite) {
    // Flooding on the dense map is the most expensive cell of Fig. 13
    // (the storm itself); benchmark it plus the cheapest suppressor.
    s.bench_with_samples("fig13/flooding_1x1", 10, || {
        let config = SimConfig::builder(1, SchemeSpec::Flooding)
            .hosts(60)
            .broadcasts(12)
            .seed(8)
            .build();
        black_box(World::new(config).run())
    });
    s.bench_with_samples("fig13/nc_dhi_1x1", 10, || {
        let config = SimConfig::builder(1, SchemeSpec::NeighborCoverage)
            .hosts(60)
            .broadcasts(12)
            .seed(8)
            .neighbor_info(NeighborInfo::Hello(HelloIntervalPolicy::Dynamic(
                DynamicHelloParams::paper(),
            )))
            .build();
        black_box(World::new(config).run())
    });
}

fn main() {
    let mut suite = Suite::from_args("figures");
    fig01_eac(&mut suite);
    fig02_contention(&mut suite);
    fig05_tuning(&mut suite);
    fig07_ac(&mut suite);
    fig10_al(&mut suite);
    fig11_hello_interval(&mut suite);
    fig12_dhi(&mut suite);
    fig13_overall(&mut suite);
    suite.finish();
}
