//! One Criterion benchmark per reproduced paper figure.
//!
//! Each bench runs a *scaled-down* version of the computation behind the
//! corresponding figure (fewer broadcasts, fewer hosts, one or two maps),
//! so a benchmark suite pass stays in the minutes. The full-size
//! regeneration is `manet-experiments <fig> --scale full`.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use broadcast_core::{
    AreaThreshold, CounterThreshold, NeighborInfo, SchemeSpec, SimConfig, World,
};
use manet_bench::{mini_config, mini_run};
use manet_geom::{contention_free_distribution, expected_additional_coverage};
use manet_net::{DynamicHelloParams, HelloIntervalPolicy};
use manet_sim_engine::{SimDuration, SimRng};

fn fig01_eac(c: &mut Criterion) {
    c.bench_function("fig01_eac_k6", |b| {
        b.iter(|| {
            let mut rng = SimRng::seed_from(1);
            black_box(expected_additional_coverage(6, 50, 300, &mut rng))
        })
    });
}

fn fig02_contention(c: &mut Criterion) {
    c.bench_function("fig02_cf_n8", |b| {
        b.iter(|| {
            let mut rng = SimRng::seed_from(2);
            black_box(contention_free_distribution(8, 2_000, &mut rng))
        })
    });
}

fn fig05_tuning(c: &mut Criterion) {
    // One candidate C(n) on one sparse map: the unit of the Fig. 5 sweep.
    c.bench_function("fig05_ac_candidate_7x7", |b| {
        b.iter(|| {
            black_box(mini_run(
                7,
                SchemeSpec::AdaptiveCounter(CounterThreshold::ramp(1)),
                3,
            ))
        })
    });
}

fn fig07_ac(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig07");
    group.bench_function("counter_fixed_c2_5x5", |b| {
        b.iter(|| black_box(mini_run(5, SchemeSpec::Counter(2), 4)))
    });
    group.bench_function("adaptive_counter_5x5", |b| {
        b.iter(|| {
            black_box(mini_run(
                5,
                SchemeSpec::AdaptiveCounter(CounterThreshold::paper_recommended()),
                4,
            ))
        })
    });
    group.finish();
}

fn fig10_al(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig10");
    group.bench_function("location_fixed_5x5", |b| {
        b.iter(|| black_box(mini_run(5, SchemeSpec::Location(0.0134), 5)))
    });
    group.bench_function("adaptive_location_5x5", |b| {
        b.iter(|| {
            black_box(mini_run(
                5,
                SchemeSpec::AdaptiveLocation(AreaThreshold::paper_recommended()),
                5,
            ))
        })
    });
    group.finish();
}

fn fig11_hello_interval(c: &mut Criterion) {
    // NC with a long fixed hello interval on a sparse map: the unit of
    // the Fig. 11 staleness sweep.
    c.bench_function("fig11_nc_hi10s_9x9", |b| {
        b.iter(|| {
            let mut config = mini_config(9, SchemeSpec::NeighborCoverage, 6);
            config.neighbor_info = NeighborInfo::Hello(HelloIntervalPolicy::Fixed(
                SimDuration::from_secs(10),
            ));
            black_box(World::new(config).run())
        })
    });
}

fn fig12_dhi(c: &mut Criterion) {
    c.bench_function("fig12_nc_dhi_7x7", |b| {
        b.iter(|| {
            let mut config = mini_config(7, SchemeSpec::NeighborCoverage, 7);
            config.neighbor_info = NeighborInfo::Hello(HelloIntervalPolicy::Dynamic(
                DynamicHelloParams::paper(),
            ));
            black_box(World::new(config).run())
        })
    });
}

fn fig13_overall(c: &mut Criterion) {
    // Flooding on the dense map is the most expensive cell of Fig. 13
    // (the storm itself); benchmark it plus the cheapest suppressor.
    let mut group = c.benchmark_group("fig13");
    group.sample_size(10);
    group.bench_function("flooding_1x1", |b| {
        b.iter(|| {
            let config = SimConfig::builder(1, SchemeSpec::Flooding)
                .hosts(60)
                .broadcasts(12)
                .seed(8)
                .build();
            black_box(World::new(config).run())
        })
    });
    group.bench_function("nc_dhi_1x1", |b| {
        b.iter(|| {
            let config = SimConfig::builder(1, SchemeSpec::NeighborCoverage)
                .hosts(60)
                .broadcasts(12)
                .seed(8)
                .neighbor_info(NeighborInfo::Hello(HelloIntervalPolicy::Dynamic(
                    DynamicHelloParams::paper(),
                )))
                .build();
            black_box(World::new(config).run())
        })
    });
    group.finish();
}

criterion_group!(
    figures,
    fig01_eac,
    fig02_contention,
    fig05_tuning,
    fig07_ac,
    fig10_al,
    fig11_hello_interval,
    fig12_dhi,
    fig13_overall,
);
criterion_main!(figures);
