//! Microbenchmarks of the simulation substrates.

use std::hint::black_box;

use manet_bench::harness::Suite;
use manet_geom::{CoverageGrid, Vec2};
use manet_mac::{Dcf, FrameHandle, MacAction};
use manet_mobility::{uniform_placement, Map, Mobility, RandomTurn, RandomTurnParams};
use manet_phy::{in_range_of, reachable_from, Medium, NeighborGrid, NodeId};
use manet_sim_engine::{EventQueue, SimDuration, SimRng, SimTime};

fn event_queue_throughput(s: &mut Suite) {
    s.bench("event_queue_schedule_pop_10k", || {
        let mut q = EventQueue::new();
        let mut rng = SimRng::seed_from(1);
        for i in 0..10_000u64 {
            q.schedule(
                SimTime::from_nanos(rng.gen_range_u32(0..1_000_000) as u64),
                i,
            );
        }
        let mut count = 0u64;
        while q.pop().is_some() {
            count += 1;
        }
        black_box(count)
    });

    s.bench("event_queue_with_half_cancelled_10k", || {
        let mut q = EventQueue::new();
        let mut keys = Vec::with_capacity(10_000);
        for i in 0..10_000u64 {
            keys.push(q.schedule(SimTime::from_nanos(i * 7 % 65_536), i));
        }
        for key in keys.iter().step_by(2) {
            q.cancel(*key);
        }
        let mut count = 0u64;
        while q.pop().is_some() {
            count += 1;
        }
        black_box(count)
    });
}

fn coverage_grid(s: &mut Suite) {
    let grid = CoverageGrid::new(48);
    let heard: Vec<Vec2> = (0..6).map(|i| Vec2::from_angle(i as f64) * 300.0).collect();
    s.bench("coverage_grid_48_six_hearers", || {
        black_box(grid.additional_fraction(Vec2::ZERO, 500.0, &heard))
    });
    s.bench("coverage_sample_points_48", || {
        black_box(grid.sample_points(Vec2::ZERO, 500.0).len())
    });
}

fn topology_queries(s: &mut Suite) {
    let map = Map::square_units(7);
    let mut rng = SimRng::seed_from(3);
    let positions = uniform_placement(&map, 100, &mut rng);
    s.bench("reachable_from_100_hosts", || {
        black_box(reachable_from(&positions, NodeId::new(0), 500.0).len())
    });
    s.bench("in_range_of_100_hosts", || {
        black_box(in_range_of(&positions, NodeId::new(0), 500.0).len())
    });

    // The grid-backed equivalents the world hot path now uses, including
    // the incremental re-index after small per-step movements.
    let bounds = map.bounds();
    let mut grid = NeighborGrid::new(bounds.width(), bounds.height(), 500.0);
    grid.update(&positions);
    let mut out = Vec::new();
    s.bench("grid_reachable_from_100_hosts", || {
        grid.reachable_into(&positions, NodeId::new(0), 500.0, &mut out);
        black_box(out.len())
    });
    s.bench("grid_in_range_of_100_hosts", || {
        grid.in_range_into(&positions, NodeId::new(0), 500.0, &mut out);
        black_box(out.len())
    });
    let mut moved = positions.clone();
    let mut flip = 1.0f64;
    s.bench("grid_update_100_hosts_small_moves", || {
        // Oscillate so positions stay on the map however many iterations
        // the harness runs; some hops cross cell boundaries, most do not.
        flip = -flip;
        for p in moved.iter_mut() {
            *p = Vec2::new(p.x + 3.0 * flip, p.y);
        }
        grid.update(&moved);
        black_box(moved[0].x)
    });
}

fn mac_state_machine(s: &mut Suite) {
    s.bench("dcf_enqueue_tx_cycle", || {
        let mut mac = Dcf::new(SimRng::seed_from(4));
        let mut now = SimTime::from_millis(1);
        for i in 0..100u64 {
            if let Some(MacAction::BeginTx { .. }) = mac.enqueue(FrameHandle(i), 280, now) {
                now += SimDuration::from_micros(2_432);
                // Walk the post-backoff timers to idle.
                let mut pending = mac.on_tx_end(now);
                while let Some(MacAction::StartTimer { delay, generation }) = pending {
                    now += delay;
                    pending = mac.on_timer(generation, now);
                }
            }
            now += SimDuration::from_millis(1);
        }
        black_box(mac.transmitted_count())
    });
}

fn medium_collisions(s: &mut Suite) {
    s.bench("medium_100_overlapping_frames", || {
        let mut medium = Medium::new(100);
        let listeners: Vec<NodeId> = (50..100).map(NodeId::new).collect();
        let t0 = SimTime::ZERO;
        let air = SimDuration::from_micros(2_432);
        let mut frames = Vec::new();
        for i in 0..50u32 {
            let start = t0 + SimDuration::from_micros(u64::from(i) * 10);
            frames.push((
                medium
                    .begin_transmission(NodeId::new(i), start, start + air, &listeners)
                    .frame,
                start + air,
            ));
        }
        for (frame, end) in frames {
            black_box(medium.end_transmission(frame, end).deliveries.len());
        }
        black_box(medium.collision_count())
    });
}

fn mobility_advance(s: &mut Suite) {
    s.bench("random_turn_1k_turns", || {
        let map = Map::square_units(5);
        let mut host = RandomTurn::new(
            map,
            RandomTurnParams::paper(50.0),
            map.bounds().center(),
            SimTime::ZERO,
            SimRng::seed_from(5),
        );
        for _ in 0..1_000 {
            let t = host.next_change().expect("always moving");
            black_box(host.position_at(t));
            host.advance(t);
        }
    });
}

fn simlint_workspace(s: &mut Suite) {
    // End-to-end lint of the real workspace: lex, parse, symbol table,
    // call graph, propagation, lock-order, fork-escape. The lint runs in
    // tier-1 CI on every PR, so its wall-clock is a substrate the same
    // way the event queue is. Sources are read once outside the timed
    // region; the bench times analysis, not disk.
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(std::path::Path::parent)
        .expect("bench crate lives two levels below the workspace root")
        .to_path_buf();
    let forks_text = std::fs::read_to_string(root.join("FORKS.md")).expect("FORKS.md");
    let locks_text = std::fs::read_to_string(root.join("LOCKS.md")).expect("LOCKS.md");
    let files: Vec<(String, String)> = simlint::workspace_files(&root)
        .expect("workspace scan")
        .into_iter()
        .map(|rel| {
            let label = rel.to_string_lossy().replace('\\', "/");
            let source = std::fs::read_to_string(root.join(&rel)).expect("read source");
            (label, source)
        })
        .collect();
    s.bench("simlint_workspace", || {
        let forks = simlint::ForkRegistry::parse("FORKS.md", &forks_text);
        let locks = simlint::LockRegistry::parse("LOCKS.md", &locks_text);
        let mut linter = simlint::Linter::new(forks, locks);
        for (label, source) in &files {
            let ctx = simlint::CrateContext::for_workspace_path(label);
            linter.lint_file(label, source, &ctx);
        }
        linter.finish(true);
        black_box(linter.diagnostics.len())
    });
}

fn main() {
    let mut suite = Suite::from_args("substrate");
    event_queue_throughput(&mut suite);
    coverage_grid(&mut suite);
    topology_queries(&mut suite);
    mac_state_machine(&mut suite);
    medium_collisions(&mut suite);
    mobility_advance(&mut suite);
    simlint_workspace(&mut suite);
    suite.finish();
}
