//! Ablation benches for the design choices called out in DESIGN.md.
//!
//! These measure *cost*; the metric impact of each choice is printed by
//! the `manet-experiments` harness (e.g. oracle vs HELLO reachability).

use std::hint::black_box;

use broadcast_core::{
    AreaThreshold, CounterThreshold, DescentShape, NeighborInfo, SchemeSpec, World,
};
use manet_bench::harness::Suite;
use manet_bench::mini_config;

/// Coverage-grid resolution: accuracy/cost trade-off of the location
/// schemes' incremental estimator.
fn coverage_resolution(s: &mut Suite) {
    for resolution in [16usize, 48, 96] {
        s.bench(
            &format!("ablation_coverage_resolution/{resolution}"),
            || {
                let mut config = mini_config(
                    5,
                    SchemeSpec::AdaptiveLocation(AreaThreshold::paper_recommended()),
                    11,
                );
                config.coverage_resolution = resolution;
                black_box(World::new(config).run())
            },
        );
    }
}

/// Oracle vs HELLO neighbor information for the adaptive counter scheme:
/// HELLO beacons cost channel time and events.
fn neighbor_info_source(s: &mut Suite) {
    for (name, info) in [
        ("oracle", NeighborInfo::Oracle),
        (
            "hello_1s",
            NeighborInfo::Hello(manet_net::HelloIntervalPolicy::fixed_1s()),
        ),
    ] {
        s.bench(&format!("ablation_neighbor_info/{name}"), || {
            let mut config = mini_config(
                5,
                SchemeSpec::AdaptiveCounter(CounterThreshold::paper_recommended()),
                12,
            );
            config.neighbor_info = info.clone();
            black_box(World::new(config).run())
        });
    }
}

/// Injected channel loss: cost of the failure-injection path.
fn channel_loss(s: &mut Suite) {
    for loss in [0.0f64, 0.1, 0.3] {
        s.bench(&format!("ablation_channel_loss/p{loss}"), || {
            let mut config = mini_config(5, SchemeSpec::Counter(3), 13);
            config.drop_probability = loss;
            black_box(World::new(config).run())
        });
    }
}

/// The three C(n) descent shapes cost the same to evaluate; this bench
/// documents that the choice is purely about metrics, not speed.
fn descent_shapes(s: &mut Suite) {
    for shape in [
        DescentShape::Convex,
        DescentShape::Linear,
        DescentShape::Concave,
    ] {
        s.bench(&format!("ablation_descent_shape/{shape:?}"), || {
            let scheme = SchemeSpec::AdaptiveCounter(CounterThreshold::with_descent(4, 12, shape));
            black_box(World::new(mini_config(7, scheme, 14)).run())
        });
    }
}

fn main() {
    let mut suite = Suite::from_args("ablations");
    coverage_resolution(&mut suite);
    neighbor_info_source(&mut suite);
    channel_loss(&mut suite);
    descent_shapes(&mut suite);
    suite.finish();
}
