//! Ablation benches for the design choices called out in DESIGN.md.
//!
//! These measure *cost*; the metric impact of each choice is printed by
//! the `manet-experiments` harness (e.g. oracle vs HELLO reachability).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use broadcast_core::{
    AreaThreshold, CounterThreshold, DescentShape, NeighborInfo, SchemeSpec, World,
};
use manet_bench::mini_config;

/// Coverage-grid resolution: accuracy/cost trade-off of the location
/// schemes' incremental estimator.
fn coverage_resolution(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_coverage_resolution");
    for resolution in [16usize, 48, 96] {
        group.bench_with_input(
            BenchmarkId::from_parameter(resolution),
            &resolution,
            |b, &resolution| {
                b.iter(|| {
                    let mut config = mini_config(
                        5,
                        SchemeSpec::AdaptiveLocation(AreaThreshold::paper_recommended()),
                        11,
                    );
                    config.coverage_resolution = resolution;
                    black_box(World::new(config).run())
                })
            },
        );
    }
    group.finish();
}

/// Oracle vs HELLO neighbor information for the adaptive counter scheme:
/// HELLO beacons cost channel time and events.
fn neighbor_info_source(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_neighbor_info");
    for (name, info) in [
        ("oracle", NeighborInfo::Oracle),
        (
            "hello_1s",
            NeighborInfo::Hello(manet_net::HelloIntervalPolicy::fixed_1s()),
        ),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &info, |b, info| {
            b.iter(|| {
                let mut config = mini_config(
                    5,
                    SchemeSpec::AdaptiveCounter(CounterThreshold::paper_recommended()),
                    12,
                );
                config.neighbor_info = info.clone();
                black_box(World::new(config).run())
            })
        });
    }
    group.finish();
}

/// Injected channel loss: cost of the failure-injection path.
fn channel_loss(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_channel_loss");
    for loss in [0.0f64, 0.1, 0.3] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("p{loss}")),
            &loss,
            |b, &loss| {
                b.iter(|| {
                    let mut config = mini_config(5, SchemeSpec::Counter(3), 13);
                    config.drop_probability = loss;
                    black_box(World::new(config).run())
                })
            },
        );
    }
    group.finish();
}

/// The three C(n) descent shapes cost the same to evaluate; this bench
/// documents that the choice is purely about metrics, not speed.
fn descent_shapes(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_descent_shape");
    for shape in [
        DescentShape::Convex,
        DescentShape::Linear,
        DescentShape::Concave,
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{shape:?}")),
            &shape,
            |b, &shape| {
                b.iter(|| {
                    let scheme = SchemeSpec::AdaptiveCounter(CounterThreshold::with_descent(
                        4, 12, shape,
                    ));
                    black_box(World::new(mini_config(7, scheme, 14)).run())
                })
            },
        );
    }
    group.finish();
}

criterion_group!(
    ablations,
    coverage_resolution,
    neighbor_info_source,
    channel_loss,
    descent_shapes,
);
criterion_main!(ablations);
