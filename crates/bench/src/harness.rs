//! The in-tree benchmark harness — the zero-dependency replacement for
//! Criterion in this workspace.
//!
//! Each bench binary builds a [`Suite`], registers benchmarks with
//! [`Suite::bench`], and calls [`Suite::finish`], which prints a summary
//! and writes machine-readable `BENCH_<suite>.json` so successive PRs can
//! track the perf trajectory.
//!
//! Methodology per benchmark:
//!
//! 1. **Warmup** — the closure runs until a time budget elapses, letting
//!    caches, branch predictors, and the allocator settle, and yielding a
//!    per-iteration estimate.
//! 2. **Sampling** — the closure runs `samples` batches of
//!    `iters_per_sample` iterations (sized so one batch takes tens of
//!    milliseconds); each batch yields one mean-nanoseconds-per-iteration
//!    observation.
//! 3. **Statistics** — the observations are summarised as median, p95,
//!    minimum, and mean. Median and p95 are what the JSON trajectory
//!    tracks: the median is robust to scheduler noise, the p95 bounds it.
//!
//! Return values are routed through [`std::hint::black_box`] so the
//! optimizer cannot delete the measured work.
//!
//! CLI flags (after `cargo bench --bench <suite> --`):
//!
//! * `--quick` — 1 sample × 1 iteration, minimal warmup: a smoke test
//!   that every benchmark still runs, in seconds instead of minutes.
//! * `--filter SUBSTR` (or a bare positional) — only run benchmarks whose
//!   name contains `SUBSTR`.
//! * `--json PATH` — write the JSON report to `PATH` instead of
//!   `BENCH_<suite>.json` at the workspace root.
//! * `--samples N` — observations per benchmark (default 15).

use std::hint::black_box;
use std::io::Write as _;
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// Target wall-clock time for one warmup phase.
const WARMUP_BUDGET: Duration = Duration::from_millis(150);
/// Target wall-clock time for one sample batch.
const SAMPLE_BUDGET: Duration = Duration::from_millis(40);
/// Default number of sample batches per benchmark.
const DEFAULT_SAMPLES: usize = 15;

/// The summary statistics of one benchmark, in nanoseconds per iteration.
#[derive(Debug, Clone)]
pub struct BenchRecord {
    /// Benchmark name (unique within the suite).
    pub name: String,
    /// Iterations per sample batch.
    pub iters_per_sample: u64,
    /// Number of sample batches.
    pub samples: usize,
    /// Median of the per-sample means.
    pub median_ns: f64,
    /// 95th percentile of the per-sample means.
    pub p95_ns: f64,
    /// Fastest per-sample mean.
    pub min_ns: f64,
    /// Mean of the per-sample means.
    pub mean_ns: f64,
}

/// A named collection of benchmarks sharing CLI configuration and one
/// JSON report.
#[derive(Debug)]
pub struct Suite {
    name: String,
    quick: bool,
    filter: Option<String>,
    samples: usize,
    json_path: PathBuf,
    records: Vec<BenchRecord>,
}

impl Suite {
    /// Creates a suite configured from the process's command-line
    /// arguments (see the module docs for the flags).
    ///
    /// # Panics
    ///
    /// Panics on unknown options or missing flag values.
    pub fn from_args(name: &str) -> Suite {
        let mut suite = Suite {
            name: name.to_string(),
            quick: false,
            filter: None,
            samples: DEFAULT_SAMPLES,
            json_path: workspace_root().join(format!("BENCH_{name}.json")),
            records: Vec::new(),
        };
        let args: Vec<String> = std::env::args().skip(1).collect();
        let mut iter = args.iter();
        while let Some(arg) = iter.next() {
            match arg.as_str() {
                "--quick" => suite.quick = true,
                "--filter" => {
                    let value = iter.next().expect("--filter needs a value");
                    suite.filter = Some(value.clone());
                }
                "--json" => {
                    let value = iter.next().expect("--json needs a path");
                    suite.json_path = PathBuf::from(value);
                }
                "--samples" => {
                    let value = iter.next().expect("--samples needs a count");
                    suite.samples = value.parse().expect("--samples needs an integer");
                }
                // Cargo passes `--bench` to harness-less bench targets.
                "--bench" | "--test" => {}
                other if other.starts_with('-') => panic!("unknown option '{other}'"),
                positional => suite.filter = Some(positional.to_string()),
            }
        }
        suite
    }

    /// Runs one benchmark with the suite's default sample count.
    pub fn bench<T>(&mut self, name: &str, f: impl FnMut() -> T) {
        let samples = self.samples;
        self.bench_with_samples(name, samples, f);
    }

    /// Runs one benchmark with an explicit sample count (for expensive
    /// bodies where the default would take minutes).
    pub fn bench_with_samples<T>(&mut self, name: &str, samples: usize, mut f: impl FnMut() -> T) {
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return;
            }
        }
        let (samples, iters) = if self.quick {
            (1, 1)
        } else {
            // Warmup until the budget elapses; the measured mean sizes
            // the sample batches.
            let mut spent = Duration::ZERO;
            let mut warm_iters: u32 = 0;
            while spent < WARMUP_BUDGET {
                let started = Instant::now();
                black_box(f());
                spent += started.elapsed();
                warm_iters += 1;
            }
            let per_iter = spent / warm_iters;
            let iters =
                (SAMPLE_BUDGET.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1_000_000) as u64;
            (samples.max(1), iters)
        };

        let mut sample_means_ns = Vec::with_capacity(samples);
        for _ in 0..samples {
            let started = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            sample_means_ns.push(started.elapsed().as_nanos() as f64 / iters as f64);
        }

        let record = summarize(name, iters, &mut sample_means_ns);
        println!(
            "{}/{:<42} median {:>12}  p95 {:>12}  ({} samples x {} iters)",
            self.name,
            record.name,
            format_ns(record.median_ns),
            format_ns(record.p95_ns),
            record.samples,
            record.iters_per_sample,
        );
        self.records.push(record);
    }

    /// Prints the report location and writes `BENCH_<suite>.json`.
    ///
    /// # Panics
    ///
    /// Panics if the JSON report cannot be written.
    pub fn finish(self) {
        let path = &self.json_path;
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"suite\": {},\n", json_string(&self.name)));
        out.push_str(&format!("  \"quick\": {},\n", self.quick));
        out.push_str("  \"benches\": [\n");
        for (i, r) in self.records.iter().enumerate() {
            let comma = if i + 1 < self.records.len() { "," } else { "" };
            out.push_str(&format!(
                "    {{\"name\": {}, \"iters_per_sample\": {}, \"samples\": {}, \
                 \"median_ns\": {:.1}, \"p95_ns\": {:.1}, \"min_ns\": {:.1}, \
                 \"mean_ns\": {:.1}}}{comma}\n",
                json_string(&r.name),
                r.iters_per_sample,
                r.samples,
                r.median_ns,
                r.p95_ns,
                r.min_ns,
                r.mean_ns,
            ));
        }
        out.push_str("  ]\n}\n");
        let mut file = std::fs::File::create(path)
            .unwrap_or_else(|err| panic!("cannot create {}: {err}", path.display()));
        file.write_all(out.as_bytes())
            .unwrap_or_else(|err| panic!("cannot write {}: {err}", path.display()));
        println!("[bench] wrote {}", path.display());
    }
}

/// Cargo runs bench binaries with the *package* directory as CWD; the
/// JSON trajectory belongs at the workspace root so successive PRs
/// overwrite one well-known file. Walk up to the `[workspace]` manifest,
/// falling back to the CWD when run outside the repo.
fn workspace_root() -> PathBuf {
    let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    for dir in cwd.ancestors() {
        if let Ok(manifest) = std::fs::read_to_string(dir.join("Cargo.toml")) {
            if manifest.contains("[workspace]") {
                return dir.to_path_buf();
            }
        }
    }
    cwd
}

fn summarize(name: &str, iters: u64, sample_means_ns: &mut [f64]) -> BenchRecord {
    sample_means_ns.sort_by(|a, b| a.partial_cmp(b).expect("sample times are finite"));
    let n = sample_means_ns.len();
    let median = if n % 2 == 1 {
        sample_means_ns[n / 2]
    } else {
        (sample_means_ns[n / 2 - 1] + sample_means_ns[n / 2]) / 2.0
    };
    let p95 = sample_means_ns[((n as f64 * 0.95).ceil() as usize).clamp(1, n) - 1];
    BenchRecord {
        name: name.to_string(),
        iters_per_sample: iters,
        samples: n,
        median_ns: median,
        p95_ns: p95,
        min_ns: sample_means_ns[0],
        mean_ns: sample_means_ns.iter().sum::<f64>() / n as f64,
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} us", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_statistics_are_order_free() {
        let mut samples = vec![5.0, 1.0, 3.0, 2.0, 4.0];
        let r = summarize("x", 7, &mut samples);
        assert_eq!(r.median_ns, 3.0);
        assert_eq!(r.min_ns, 1.0);
        assert_eq!(r.p95_ns, 5.0);
        assert_eq!(r.mean_ns, 3.0);
        assert_eq!(r.iters_per_sample, 7);
    }

    #[test]
    fn even_sample_counts_interpolate_the_median() {
        let mut samples = vec![1.0, 2.0, 3.0, 4.0];
        let r = summarize("x", 1, &mut samples);
        assert_eq!(r.median_ns, 2.5);
    }

    #[test]
    fn json_strings_escape_specials() {
        assert_eq!(json_string("plain"), "\"plain\"");
        assert_eq!(json_string("a\"b\\c"), "\"a\\\"b\\\\c\"");
        assert_eq!(json_string("x\ny"), "\"x\\u000ay\"");
    }

    #[test]
    fn nanosecond_formatting_picks_units() {
        assert_eq!(format_ns(12.0), "12 ns");
        assert_eq!(format_ns(1_500.0), "1.500 us");
        assert_eq!(format_ns(2_500_000.0), "2.500 ms");
        assert_eq!(format_ns(3_200_000_000.0), "3.200 s");
    }
}
