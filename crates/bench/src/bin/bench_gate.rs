//! Bench regression gate: compares two harness JSON reports and fails
//! when any benchmark present in both regressed beyond the threshold.
//!
//! ```text
//! bench_gate [--threshold PCT] <current.json> <baseline.json>
//! ```
//!
//! The gate compares `median_ns` per benchmark name. Names present in
//! only one report are listed but never fail the gate (new benchmarks
//! appear, retired ones disappear — neither is a regression). Exit code
//! 0 means every shared benchmark is within `PCT` percent (default 15)
//! of its baseline median; 1 means at least one regressed; 2 means a
//! report could not be read or parsed.
//!
//! The parser handles exactly the subset of JSON the in-tree harness
//! emits (`Suite::finish`): it scans for `"name"` string fields and the
//! `"median_ns"` number that follows each. Quick-mode reports gate the
//! same way — the threshold is generous enough for quick-sample noise
//! on a CI box, and CI passes `--quick` output here precisely so a
//! catastrophic slowdown fails the build without a full bench run.

use std::process::ExitCode;

fn main() -> ExitCode {
    let mut threshold_pct = 15.0;
    let mut paths = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--threshold" => {
                let value = args.next().unwrap_or_else(|| usage("missing threshold"));
                threshold_pct = value
                    .parse()
                    .unwrap_or_else(|_| usage(&format!("bad threshold {value}")));
            }
            "--help" | "-h" => usage(""),
            _ => paths.push(arg),
        }
    }
    let [current_path, baseline_path] = paths.as_slice() else {
        usage("expected exactly two report paths");
    };

    let current = match read_medians(current_path) {
        Ok(m) => m,
        Err(err) => {
            eprintln!("bench_gate: {current_path}: {err}");
            return ExitCode::from(2);
        }
    };
    let baseline = match read_medians(baseline_path) {
        Ok(m) => m,
        Err(err) => {
            eprintln!("bench_gate: {baseline_path}: {err}");
            return ExitCode::from(2);
        }
    };

    let mut failures = 0usize;
    let mut shared = 0usize;
    for (name, current_ns) in &current {
        let Some(&baseline_ns) = baseline.iter().find(|(b, _)| b == name).map(|(_, ns)| ns) else {
            println!("  new      {name} ({})", format_ms(*current_ns));
            continue;
        };
        shared += 1;
        let delta_pct = (current_ns / baseline_ns - 1.0) * 100.0;
        let verdict = if delta_pct > threshold_pct {
            failures += 1;
            "REGRESSED"
        } else if delta_pct < -threshold_pct {
            "improved"
        } else {
            "ok"
        };
        println!(
            "  {verdict:<9} {name}: {} -> {} ({delta_pct:+.1}%)",
            format_ms(baseline_ns),
            format_ms(*current_ns),
        );
    }
    for (name, _) in &baseline {
        if !current.iter().any(|(c, _)| c == name) {
            println!("  retired  {name}");
        }
    }
    println!(
        "bench_gate: {shared} shared, {failures} regressed beyond {threshold_pct}% \
         ({current_path} vs {baseline_path})"
    );
    if failures > 0 {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("bench_gate: {err}");
    }
    eprintln!("usage: bench_gate [--threshold PCT] <current.json> <baseline.json>");
    std::process::exit(2);
}

fn read_medians(path: &str) -> Result<Vec<(String, f64)>, String> {
    let text = std::fs::read_to_string(path).map_err(|err| err.to_string())?;
    parse_medians(&text)
}

/// Extracts `(name, median_ns)` pairs from a harness JSON report: every
/// `"name"` string field, paired with the next `"median_ns"` number.
fn parse_medians(text: &str) -> Result<Vec<(String, f64)>, String> {
    let mut out = Vec::new();
    let mut rest = text;
    while let Some(at) = rest.find("\"name\"") {
        rest = skip_colon(&rest[at + "\"name\"".len()..])?;
        let (name, after) = parse_string(rest)?;
        let at = after
            .find("\"median_ns\"")
            .ok_or_else(|| format!("bench {name:?} has no median_ns"))?;
        rest = skip_colon(&after[at + "\"median_ns\"".len()..])?;
        let end = rest
            .find(|c: char| !(c.is_ascii_digit() || matches!(c, '.' | '-' | '+' | 'e' | 'E')))
            .unwrap_or(rest.len());
        let median: f64 = rest[..end]
            .parse()
            .map_err(|_| format!("bench {name:?}: bad median {:?}", &rest[..end]))?;
        if out.iter().any(|(n, _)| *n == name) {
            return Err(format!("duplicate bench name {name:?}"));
        }
        out.push((name, median));
        rest = &rest[end..];
    }
    if out.is_empty() {
        return Err("no benchmarks found".to_string());
    }
    Ok(out)
}

fn skip_colon(s: &str) -> Result<&str, String> {
    let s = s.trim_start();
    let s = s.strip_prefix(':').ok_or("expected ':'")?;
    Ok(s.trim_start())
}

/// Parses a JSON string literal at the start of `s` (the escapes the
/// harness writer emits: `\"`, `\\`, and `\u00XX` control codes are
/// passed through verbatim — names are compared, never displayed raw).
fn parse_string(s: &str) -> Result<(String, &str), String> {
    let body = s.strip_prefix('"').ok_or("expected '\"'")?;
    let mut out = String::new();
    let mut chars = body.char_indices();
    while let Some((i, c)) = chars.next() {
        match c {
            '"' => return Ok((out, &body[i + 1..])),
            '\\' => {
                let (_, escaped) = chars.next().ok_or("truncated escape")?;
                out.push('\\');
                out.push(escaped);
            }
            _ => out.push(c),
        }
    }
    Err("unterminated string".to_string())
}

fn format_ms(ns: f64) -> String {
    format!("{:.2}ms", ns / 1e6)
}

#[cfg(test)]
mod tests {
    use super::*;

    const REPORT: &str = r#"{
  "suite": "world",
  "quick": false,
  "benches": [
    {"name": "world/a", "iters_per_sample": 10, "samples": 15, "median_ns": 1000.0, "p95_ns": 1.0, "min_ns": 1.0, "mean_ns": 1.0},
    {"name": "world/b", "iters_per_sample": 1, "samples": 15, "median_ns": 2500.5, "p95_ns": 1.0, "min_ns": 1.0, "mean_ns": 1.0}
  ]
}"#;

    #[test]
    fn parses_harness_report() {
        let medians = parse_medians(REPORT).expect("parse");
        assert_eq!(
            medians,
            vec![
                ("world/a".to_string(), 1000.0),
                ("world/b".to_string(), 2500.5)
            ]
        );
    }

    #[test]
    fn rejects_missing_median() {
        let err = parse_medians(r#"{"benches": [{"name": "x"}]}"#).unwrap_err();
        assert!(err.contains("median_ns"), "{err}");
    }

    #[test]
    fn rejects_duplicates_and_empty() {
        assert!(parse_medians("{}").is_err());
        let dup = r#"[{"name": "x", "median_ns": 1}, {"name": "x", "median_ns": 2}]"#;
        assert!(parse_medians(dup).unwrap_err().contains("duplicate"));
    }
}
