//! # manet-bench
//!
//! Benchmark support for the broadcast-storm reproduction: the in-tree
//! [`harness`] (warmup + timed samples, median/p95 statistics, JSON
//! reports — the workspace's zero-dependency replacement for Criterion)
//! plus shared helpers. The actual benchmarks live in `benches/`:
//!
//! * `figures` — one benchmark per reproduced paper figure, running a
//!   scaled-down version of that figure's computation (the full
//!   regeneration is the `manet-experiments` binary).
//! * `substrate` — microbenchmarks of the building blocks: event queue,
//!   coverage grid, reachability BFS, MAC state machine, mobility.
//! * `ablations` — design-choice sweeps called out in DESIGN.md:
//!   coverage-grid resolution, oracle vs HELLO neighbor information,
//!   channel loss injection, and `C(n)` descent shapes.
//!
//! Run them with `cargo bench -p manet-bench --bench substrate`; append
//! `-- --quick` for a seconds-long smoke pass that still writes
//! `BENCH_substrate.json` at the workspace root.

#![warn(missing_docs)]

pub mod harness;

use broadcast_core::{SchemeSpec, SimConfig, SimReport, World};

/// A miniature simulation sized so one run fits in a bench iteration
/// (tens of milliseconds): 40 hosts, 12 broadcasts.
pub fn mini_run(map_units: u32, scheme: SchemeSpec, seed: u64) -> SimReport {
    World::new(mini_config(map_units, scheme, seed)).run()
}

/// The configuration behind [`mini_run`], for benches that tweak it.
pub fn mini_config(map_units: u32, scheme: SchemeSpec, seed: u64) -> SimConfig {
    SimConfig::builder(map_units, scheme)
        .hosts(40)
        .broadcasts(12)
        .seed(seed)
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mini_run_is_fast_and_sane() {
        let report = mini_run(3, SchemeSpec::Flooding, 5);
        assert_eq!(report.broadcasts, 12);
        assert!(report.reachability > 0.0);
    }
}
