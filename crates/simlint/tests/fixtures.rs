//! Fixture-corpus tests: every `ok/` file must lint clean, every `bad/`
//! file must reproduce its checked-in `.expected` diagnostics exactly
//! (including propagation chains), and the CLI exit codes must match
//! (0 clean, 1 diagnostics).

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};
use std::process::Command;

use simlint::forks::ForkRegistry;
use simlint::lint_paths;
use simlint::locks::LockRegistry;
use simlint::rules::{
    RULE_EPOCH_BARRIER, RULE_FLOAT_KEY, RULE_FORK, RULE_FORK_ESCAPE, RULE_HOT_PATH,
    RULE_LOCK_ORDER, RULE_NONDET_ITER, RULE_PURE_MODEL, RULE_SERVE_LOOP, RULE_SHARD_BOUNDARY,
    RULE_UNKNOWN, RULE_UNUSED_ALLOW, RULE_WALL_CLOCK,
};

fn fixtures_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

fn fixture_forks() -> ForkRegistry {
    let path = fixtures_dir().join("FORKS.md");
    let text = std::fs::read_to_string(&path).expect("read fixtures/FORKS.md");
    ForkRegistry::parse("FORKS.md", &text)
}

fn fixture_locks() -> LockRegistry {
    let path = fixtures_dir().join("LOCKS.md");
    let text = std::fs::read_to_string(&path).expect("read fixtures/LOCKS.md");
    LockRegistry::parse("LOCKS.md", &text)
}

fn rs_files(sub: &str) -> Vec<PathBuf> {
    let dir = fixtures_dir().join(sub);
    let mut files: Vec<PathBuf> = std::fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("read_dir {}: {e}", dir.display()))
        .map(|e| e.expect("dir entry").path())
        .filter(|p| p.extension().is_some_and(|x| x == "rs"))
        .collect();
    files.sort();
    assert!(!files.is_empty(), "no fixtures under {}", dir.display());
    files
}

/// Every ok/ fixture lints clean in isolation (fresh linter per file, so
/// fork streams registered for one file cannot mask another's).
#[test]
fn ok_corpus_is_clean() {
    for file in rs_files("ok") {
        let diags = lint_paths(
            std::slice::from_ref(&file),
            fixture_forks(),
            fixture_locks(),
        )
        .unwrap_or_else(|e| panic!("lint {}: {e}", file.display()));
        assert!(
            diags.is_empty(),
            "{} should be clean, got:\n{}",
            file.display(),
            diags
                .iter()
                .map(|d| d.to_string())
                .collect::<Vec<_>>()
                .join("\n")
        );
    }
}

/// Every bad/ fixture's CLI output matches its sibling `.expected`
/// snapshot byte for byte, and the binary exits 1. The CLI runs with the
/// fixtures directory as cwd so paths in the snapshot stay relative.
#[test]
fn bad_corpus_matches_snapshots() {
    for file in rs_files("bad") {
        let expected_path = file.with_extension("expected");
        let expected = std::fs::read_to_string(&expected_path)
            .unwrap_or_else(|e| panic!("read {}: {e}", expected_path.display()));
        let rel = format!(
            "bad/{}",
            file.file_name().expect("file name").to_string_lossy()
        );
        let out = Command::new(env!("CARGO_BIN_EXE_simlint"))
            .current_dir(fixtures_dir())
            .args(["--forks", "FORKS.md", "--locks", "LOCKS.md", &rel])
            .output()
            .expect("run simlint");
        assert_eq!(
            out.status.code(),
            Some(1),
            "{rel}: expected exit 1, got {:?}\nstderr: {}",
            out.status.code(),
            String::from_utf8_lossy(&out.stderr)
        );
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert_eq!(
            stdout,
            expected,
            "{rel}: diagnostics drifted from {}",
            expected_path.display()
        );
    }
}

/// Each bad fixture fires exactly the rule ids it was seeded with — no
/// cross-talk between rules.
#[test]
fn bad_fixtures_fire_exactly_their_rules() {
    let cases: &[(&str, &[&str])] = &[
        ("allow_once.rs", &[RULE_NONDET_ITER]),
        ("chain_hop1.rs", &[RULE_HOT_PATH]),
        ("chain_hop2.rs", &[RULE_PURE_MODEL]),
        ("chain_hop3.rs", &[RULE_HOT_PATH]),
        ("epoch_shard.rs", &[RULE_EPOCH_BARRIER]),
        ("float_key.rs", &[RULE_FLOAT_KEY]),
        ("fork_duplicate.rs", &[RULE_FORK]),
        ("fork_escape.rs", &[RULE_FORK_ESCAPE]),
        ("fork_unregistered.rs", &[RULE_FORK]),
        ("hot_path.rs", &[RULE_HOT_PATH]),
        ("iteration.rs", &[RULE_NONDET_ITER]),
        ("lock_cycle.rs", &[RULE_LOCK_ORDER]),
        ("lock_order.rs", &[RULE_LOCK_ORDER]),
        ("pure_model.rs", &[RULE_PURE_MODEL]),
        // The wall-clock read inside the marked fn trips both the
        // serve-loop rule and the crate-level wall-clock rule.
        ("serve_loop.rs", &[RULE_SERVE_LOOP, RULE_WALL_CLOCK]),
        ("shard_merge.rs", &[RULE_SHARD_BOUNDARY]),
        ("unknown_rule.rs", &[RULE_UNKNOWN]),
        ("unused_allow.rs", &[RULE_UNUSED_ALLOW]),
        ("wall_clock.rs", &[RULE_WALL_CLOCK]),
    ];
    let found: Vec<String> = rs_files("bad")
        .iter()
        .map(|p| p.file_name().expect("name").to_string_lossy().into_owned())
        .collect();
    let listed: Vec<&str> = cases.iter().map(|(n, _)| *n).collect();
    assert_eq!(found, listed, "bad/ corpus and rule table out of sync");

    for (name, rules) in cases {
        let file = fixtures_dir().join("bad").join(name);
        let diags = lint_paths(
            std::slice::from_ref(&file),
            fixture_forks(),
            fixture_locks(),
        )
        .unwrap_or_else(|e| panic!("lint {name}: {e}"));
        let fired: BTreeSet<&str> = diags.iter().map(|d| d.rule).collect();
        let expected: BTreeSet<&str> = rules.iter().copied().collect();
        assert_eq!(fired, expected, "{name}: wrong rule set");
    }
}

/// The hop fixtures pin the propagation chain itself: the printed path
/// must walk annotation → intermediate callees → violation site, with
/// one entry per hop.
#[test]
fn propagation_chains_walk_the_call_path() {
    let cases: &[(&str, &[&str])] = &[
        (
            "chain_hop1.rs",
            &["chain_hop1::deliver", "chain_hop1::log_delivery"],
        ),
        (
            "chain_hop2.rs",
            &[
                "chain_hop2::decide",
                "chain_hop2::assess",
                "chain_hop2::jitter",
            ],
        ),
        (
            "chain_hop3.rs",
            &[
                "chain_hop3::advance",
                "chain_hop3::drain",
                "chain_hop3::fanout",
                "chain_hop3::audit",
            ],
        ),
    ];
    for (name, chain) in cases {
        let file = fixtures_dir().join("bad").join(name);
        let diags = lint_paths(
            std::slice::from_ref(&file),
            fixture_forks(),
            fixture_locks(),
        )
        .unwrap_or_else(|e| panic!("lint {name}: {e}"));
        assert_eq!(diags.len(), 1, "{name}: {diags:?}");
        assert_eq!(diags[0].chain, *chain, "{name}: wrong chain");
        let rendered = diags[0].to_string();
        assert!(
            rendered.contains(&format!("(via {})", chain.join(" → "))),
            "{name}: chain missing from span output: {rendered}"
        );
    }
}

/// The cross-file case: annotation in one module, violation in another,
/// both passed in a single CLI invocation. The snapshot pins the chain
/// spanning both files.
#[test]
fn cross_file_chain_matches_snapshot() {
    let expected_path = fixtures_dir().join("bad_multi/cross.expected");
    let expected = std::fs::read_to_string(&expected_path)
        .unwrap_or_else(|e| panic!("read {}: {e}", expected_path.display()));
    let out = Command::new(env!("CARGO_BIN_EXE_simlint"))
        .current_dir(fixtures_dir())
        .args([
            "--forks",
            "FORKS.md",
            "--locks",
            "LOCKS.md",
            "bad_multi/cross_a.rs",
            "bad_multi/cross_b.rs",
        ])
        .output()
        .expect("run simlint");
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(stdout, expected, "cross-file diagnostics drifted");
    assert!(
        stdout.contains("(via cross_a::decide_rebroadcast → cross_b::apply_jitter)"),
        "chain must span both modules: {stdout}"
    );
}

/// An allow directive suppresses exactly one diagnostic: allow_once.rs
/// seeds three default-hasher violations and allows the first, so the
/// two on the following line survive.
#[test]
fn allow_suppresses_exactly_one_diagnostic() {
    let file = fixtures_dir().join("bad/allow_once.rs");
    let diags = lint_paths(
        std::slice::from_ref(&file),
        fixture_forks(),
        fixture_locks(),
    )
    .expect("lint");
    assert_eq!(diags.len(), 2, "one of three violations should be allowed");
    assert!(diags.iter().all(|d| d.rule == RULE_NONDET_ITER));
    assert!(diags.iter().all(|d| d.line == 8), "line 7 was allowed");
}

/// Unknown rule names in allow directives are themselves diagnostics.
#[test]
fn unknown_rule_in_allow_directive_errors() {
    let file = fixtures_dir().join("bad/unknown_rule.rs");
    let diags = lint_paths(
        std::slice::from_ref(&file),
        fixture_forks(),
        fixture_locks(),
    )
    .expect("lint");
    assert_eq!(diags.len(), 1);
    assert_eq!(diags[0].rule, RULE_UNKNOWN);
    assert!(diags[0].message.contains("no-such-rule"));
}

/// The whole ok/ corpus in a single CLI invocation exits 0 with no
/// output.
#[test]
fn cli_exits_zero_on_ok_corpus() {
    let rels: Vec<String> = rs_files("ok")
        .iter()
        .map(|p| format!("ok/{}", p.file_name().expect("file name").to_string_lossy()))
        .collect();
    let out = Command::new(env!("CARGO_BIN_EXE_simlint"))
        .current_dir(fixtures_dir())
        .args(["--forks", "FORKS.md", "--locks", "LOCKS.md"])
        .args(&rels)
        .output()
        .expect("run simlint");
    assert_eq!(
        out.status.code(),
        Some(0),
        "stdout: {}\nstderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(out.stdout.is_empty());
}

/// `--json` emits one object per diagnostic with the chain as an array;
/// output stays line-oriented for the problem matcher's text mode.
#[test]
fn json_mode_emits_machine_readable_diagnostics() {
    let out = Command::new(env!("CARGO_BIN_EXE_simlint"))
        .current_dir(fixtures_dir())
        .args([
            "--forks",
            "FORKS.md",
            "--locks",
            "LOCKS.md",
            "--json",
            "bad/chain_hop1.rs",
        ])
        .output()
        .expect("run simlint");
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&out.stdout);
    let lines: Vec<&str> = stdout.lines().collect();
    assert_eq!(lines.len(), 1, "{stdout}");
    assert!(lines[0].starts_with("{\"file\":\"bad/chain_hop1.rs\""));
    assert!(lines[0].contains("\"rule\":\"hot-path-alloc\""));
    assert!(
        lines[0].contains("\"chain\":[\"chain_hop1::deliver\",\"chain_hop1::log_delivery\"]"),
        "{stdout}"
    );
}

#[test]
fn workspace_walker_skips_only_tests_fixtures() {
    // The seeded-violation corpus lives in `tests/fixtures/**` and must
    // never leak into a `--workspace` lint; a `fixtures` directory
    // anywhere else (e.g. `src/fixtures/`) is ordinary source and must
    // still be scanned. Build a throwaway workspace exercising both.
    let root = std::env::temp_dir().join(format!("simlint_walker_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let mk = |rel: &str, text: &str| {
        let path = root.join(rel);
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(path, text).unwrap();
    };
    mk("Cargo.toml", "[workspace]\n");
    mk("src/lib.rs", "pub fn top() {}\n");
    mk("src/fixtures/table.rs", "pub fn linted() {}\n");
    mk("tests/fixtures/seeded.rs", "fn excluded() {}\n");
    mk("tests/smoke.rs", "#[test]\nfn t() {}\n");
    mk("crates/member/src/lib.rs", "pub fn member() {}\n");
    mk(
        "crates/member/tests/fixtures/bad.rs",
        "fn excluded_too() {}\n",
    );
    mk(
        "crates/member/benches/fixtures/gen.rs",
        "pub fn linted_too() {}\n",
    );

    let files: BTreeSet<String> = simlint::workspace_files(&root)
        .expect("walk temp workspace")
        .into_iter()
        .map(|p| p.to_string_lossy().replace('\\', "/"))
        .collect();
    std::fs::remove_dir_all(&root).unwrap();

    let expect: BTreeSet<String> = [
        "src/lib.rs",
        "src/fixtures/table.rs",
        "tests/smoke.rs",
        "crates/member/src/lib.rs",
        "crates/member/benches/fixtures/gen.rs",
    ]
    .into_iter()
    .map(str::to_string)
    .collect();
    assert_eq!(
        files, expect,
        "tests/fixtures must be excluded, every other fixtures dir linted"
    );
}
