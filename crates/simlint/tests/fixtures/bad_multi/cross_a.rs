//! Cross-file propagation seed: the annotated pure-model decision lives
//! here; the violating helper lives in cross_b.rs. Linted together, the
//! chain spans both modules.

#[cfg_attr(simlint, pure_model)]
pub fn decide_rebroadcast(state: &mut Proto, pkt: u64) {
    apply_jitter(state, pkt);
}
