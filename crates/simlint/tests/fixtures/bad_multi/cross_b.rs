//! The helper called from cross_a.rs: its RNG draw and queue mutation
//! trip the pure-model rule one file away.

pub fn apply_jitter(state: &mut Proto, pkt: u64) {
    let j = state.rng.gen_range_u32(95..106);
    state.queue.schedule(j.into(), pkt);
}
