//! The escape hatch: one justified violation per directive, on the same
//! line or the line above.

fn wall_time_for_progress_logs() {
    // simlint: allow(wall-clock) — progress logging only, never sim state
    let started = Instant::now();
    let _ = started;
}

fn scratch_set() {
    let mut seen = HashSet::new(); // simlint: allow(nondeterministic-iteration) — membership only, never iterated
    seen.insert(1u64);
}
