//! Simulation time passes: `SimTime` arithmetic everywhere, and `Instant`
//! only inside strings and comments.

fn schedule(now: SimTime, airtime: SimDuration) -> SimTime {
    // Instant::now() in a comment is fine.
    let banner = "Instant::now() and SystemTime::now() in a string are fine";
    let _ = banner;
    now + airtime
}

fn holds_an_instant_typed_value(slot: Option<Instant>) -> bool {
    // Type positions do not read the clock; only `::now` reads do.
    slot.is_some()
}
