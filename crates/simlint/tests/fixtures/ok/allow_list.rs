//! A comma-separated allow list: each listed rule may suppress one
//! diagnostic from the directive's line or the line below.

fn snapshot_for_logs() {
    // simlint: allow(wall-clock, nondeterministic-iteration) — log-only scratch
    let (t, mut seen) = (Instant::now(), HashSet::new());
    seen.insert(1u64);
    let _ = (t, seen);
}
