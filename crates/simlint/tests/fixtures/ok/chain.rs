//! Transitive propagation passes: every fn reachable from the annotated
//! hot path reuses caller buffers; the allocating report helper is only
//! reachable from cold code.

struct World;

impl World {
    #[cfg_attr(simlint, hot_path)]
    fn advance(&mut self) {
        self.drain();
    }

    fn drain(&mut self) {
        self.deliveries.clear();
        self.scratch.push(1u32);
    }

    fn report(&self) -> String {
        format!("{} deliveries", self.delivered)
    }
}
