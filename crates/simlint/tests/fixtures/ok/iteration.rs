//! Deterministic collections pass: explicit hashers, BTree collections,
//! and `HashMap` mentions inside strings or comments never fire.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::hash::BuildHasherDefault;

type IdMap<V> = HashMap<u32, V, BuildHasherDefault<IdHasher>>;
type SeqSet = HashSet<u64, BuildHasherDefault<SeqHasher>>;

struct Table {
    by_id: IdMap<u64>,
    seen: SeqSet,
    ordered: BTreeMap<u64, u64>,
    members: BTreeSet<u32>,
}

fn build() -> Table {
    // A comment saying HashMap::new() is not a call site.
    let doc = "HashMap::new() inside a string is not a call site";
    let _ = doc;
    Table {
        by_id: IdMap::default(),
        seen: SeqSet::default(),
        ordered: BTreeMap::new(),
        members: BTreeSet::new(),
    }
}
