//! An epoch-shard drain that stays inside its lane: it pops its own
//! queue, re-stamps from the disjoint per-shard sequence lane, and
//! buffers cross-strip effects for the barrier to merge.

#[cfg_attr(simlint, epoch_shard)]
pub fn drain_shard(
    queue: &mut EventQueue,
    base_seq: u64,
    shards: u64,
    s: u64,
    out: &mut Vec<(u64, u64)>,
) {
    let mut rearmed = 0u64;
    while let Some((time, seq)) = queue.pop_entry() {
        let stamp = base_seq + rearmed * shards + s;
        rearmed += 1;
        queue.schedule_seq(time + 20_000, stamp);
        out.push((time, seq));
    }
}
