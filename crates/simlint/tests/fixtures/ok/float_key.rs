//! Event-key passes: ordered types carry integer time; float fields live
//! only on unordered types.

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct EventKey {
    pub at_nanos: u64,
    pub seq: u64,
}

#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Position {
    pub x: f64,
    pub y: f64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Phase {
    Idle,
    Backoff { slots: u32 },
}
