//! Fork discipline passes: both literal streams are registered in the
//! fixture registry, and derived (non-literal) streams are not checked.

fn wire(root: &SimRng, hosts: u32) {
    let placement = root.fork(7);
    let workload = root.fork(8);
    let _ = (placement, workload);
    for i in 0..hosts {
        // Derived per-host streams carry no literal constant.
        let per_host = root.fork(100 + u64::from(i));
        let _ = per_host;
    }
}

#[cfg(test)]
mod tests {
    // Test code may probe arbitrary streams.
    fn probes() {
        let r = SimRng::seed_from(7);
        let _ = (r.fork(1), r.fork(1), r.fork(424242));
    }
}
