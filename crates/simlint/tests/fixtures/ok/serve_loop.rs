//! A disciplined serve-loop frame reader: the payload length is checked
//! against an explicit cap before any allocation, the buffer resize is
//! bounded by that cap, and nothing reads the host clock — the session
//! is a pure function of the protocol bytes.

const MAX_FRAME_LEN: usize = 256 << 20;

#[cfg_attr(simlint, serve_loop)]
pub fn read_frame(input: &mut impl Read, buf: &mut Vec<u8>) -> io::Result<Frame> {
    let mut prefix = [0u8; 4];
    input.read_exact(&mut prefix)?;
    let len = u32::from_le_bytes(prefix) as usize;
    if len == 0 || len > MAX_FRAME_LEN {
        return Err(bad_length(len));
    }
    buf.resize(len, 0);
    input.read_exact(buf)?;
    Frame::decode(buf)
}

#[cfg_attr(simlint, serve_loop)]
pub fn admit(queue: &Queue, jobs: Vec<Job>) -> Reply {
    let mut accepted = Vec::with_capacity(jobs.len());
    for job in jobs {
        if queue.depth() + accepted.len() < queue.capacity() {
            accepted.push(job);
        }
    }
    Reply::accepted(accepted)
}
