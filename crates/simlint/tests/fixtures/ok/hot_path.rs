//! Hot-path passes: the annotated function reuses caller buffers; the
//! unannotated helper may allocate freely.

#[cfg_attr(simlint, hot_path)]
pub fn end_transmission_into(deliveries: &mut Vec<Delivery>, pool: &mut Vec<Vec<u32>>) {
    deliveries.clear();
    let mut scratch = pool.pop().unwrap_or_default();
    scratch.clear();
    scratch.extend([1, 2, 3]);
    pool.push(scratch);
}

pub fn cold_reporting_path(items: &[u32]) -> String {
    let doubled: Vec<u32> = items.iter().map(|x| x * 2).collect();
    format!("{doubled:?}")
}
