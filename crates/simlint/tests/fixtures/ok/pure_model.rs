//! Clean pure-model functions: state transitions that only read their
//! inputs and mutate their own protocol state, pushing requested effects
//! into the caller's buffer for the dispatcher to execute.

#[cfg_attr(simlint, pure_model)]
pub fn step(&mut self, now: SimTime, action: &PureAction<'_>, fx: &mut Vec<Effect>) {
    self.tables[action.node].observe(action.sender, now);
    if self.ledger.first_hear(action.packet) {
        fx.push(Effect::ScheduleAssessment {
            node: action.node,
            packet: action.packet,
        });
    }
}

// The same method names are fine outside the marker: the dispatcher is
// exactly where RNG draws, queue mutation, and Medium mutation belong.
pub fn dispatch(&mut self, now: SimTime) {
    let jitter = self.proto_rng.gen_range_u32(95..106);
    let key = self.queue.schedule(now, Event::IssueBroadcast);
    self.queue.cancel(key);
    self.medium.begin_transmission(NodeId::new(0), now, jitter.into());
}
