//! Shard-merge passes: the annotated functions stay on vectors and
//! indexed state; the unannotated helper may use ordered maps freely.

use std::collections::BTreeMap;

#[cfg_attr(simlint, shard_merge)]
pub fn schedule_event(
    queues: &mut [Vec<(u64, u64)>],
    strip_of_host: &[u32],
    host: usize,
    key: (u64, u64),
) {
    let strip = strip_of_host[host] as usize;
    queues[strip].push(key);
}

#[cfg_attr(simlint, shard_merge)]
pub fn peek_next(queues: &[Vec<(u64, u64)>]) -> Option<(u64, u64)> {
    queues.iter().filter_map(|q| q.first().copied()).min()
}

pub fn cold_summary(counts: &[(String, u64)]) -> BTreeMap<String, u64> {
    counts.iter().cloned().collect()
}
