//! Lock discipline passes: nested acquisitions follow the ranked order
//! in LOCKS.md, and guards released (dropped) before the next
//! acquisition never create edges.

use std::sync::Mutex;

struct Session {
    writer: Mutex<u32>,
    counts: Mutex<u32>,
}

impl Session {
    fn flush(&self) {
        let w = self.writer.lock().unwrap();
        let c = self.counts.lock().unwrap();
        let _ = (w, c);
    }

    fn tally(&self) {
        let c = self.counts.lock().unwrap();
        drop(c);
        let w = self.writer.lock().unwrap();
        let _ = w;
    }
}
