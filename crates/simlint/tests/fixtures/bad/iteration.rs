//! Seeded violations: default-hasher maps whose iteration order could
//! feed event scheduling or metrics output.

use std::collections::{HashMap, HashSet};

struct Ledger {
    per_host: HashMap<u32, u64>,
    heard: HashSet<u64>,
}

fn build() -> Ledger {
    Ledger {
        per_host: HashMap::new(),
        heard: HashSet::with_capacity(64),
    }
}
