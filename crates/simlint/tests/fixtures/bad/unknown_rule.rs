//! Seeded violation: a directive naming a rule that does not exist is
//! itself an error (the escape hatch cannot silently rot).

fn quiet() {
    // simlint: allow(no-such-rule)
    let x = 1u64;
    let _ = x;
}
