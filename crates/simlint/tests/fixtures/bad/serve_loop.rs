//! Seeded violations: a serve loop that trusts its peer. The
//! whole-stream slurps hand the client an unbounded allocation, the
//! per-frame push grows with no visible bound, and the wall-clock read
//! makes session behavior depend on the host instead of the protocol.

#[cfg_attr(simlint, serve_loop)]
pub fn session(input: &mut impl Read, state: &mut Session) -> io::Result<()> {
    let mut raw = Vec::new();
    input.read_to_end(&mut raw)?;
    let mut text = String::new();
    input.read_to_string(&mut text)?;
    for frame in decode_all(&raw) {
        state.frames.push(frame);
    }
    state.started = Instant::now();
    Ok(())
}
