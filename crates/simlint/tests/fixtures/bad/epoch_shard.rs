//! Seeded violations: global effects inside an epoch-shard drain.
//! Per-shard queue operations are the drain's job; the RNG receiver
//! draws, the global `event_seq` stamp, and the `Medium` mutation are
//! data races — they must wait for the epoch barrier.

#[cfg_attr(simlint, epoch_shard)]
pub fn drain_shard(world: &mut World, s: usize, stream: u64) {
    let jitter = world.rng.gen_unit_f64();
    let node_rng = world.rng.fork(stream);
    world.event_seq += 1;
    world
        .medium
        .begin_transmission_into(s, jitter, node_rng.state());
}
