//! Seeded violations: float fields inside ordered types that could key
//! the event queue.

#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct FloatTime {
    pub seconds: f64,
}

#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct Keyed(pub f32, pub u64);
