//! Seeded violation: two sessions acquire the same pair of mutexes in
//! opposite orders — a deadlock-in-waiting no registry rank can bless.

use std::sync::Mutex;

struct Hub {
    alpha: Mutex<u32>,
    beta: Mutex<u32>,
}

impl Hub {
    fn forward(&self) {
        let a = self.alpha.lock().unwrap();
        let b = self.beta.lock().unwrap();
        let _ = (a, b);
    }

    fn backward(&self) {
        let b = self.beta.lock().unwrap();
        let a = self.alpha.lock().unwrap();
        let _ = (a, b);
    }
}
