//! Seeded violation: an allow directive that suppresses nothing is
//! itself an error — stale escape hatches hide future regressions.

fn tidy() {
    // simlint: allow(wall-clock) — nothing here reads the clock
    let x = 0u64;
    let _ = x;
}
