//! Seeded violation one call-graph hop below the annotation: the
//! annotated delivery fn is clean, but the helper it calls allocates.

struct Medium;

impl Medium {
    #[cfg_attr(simlint, hot_path)]
    fn deliver(&mut self, host: u32) {
        self.log_delivery(host);
    }

    fn log_delivery(&mut self, host: u32) {
        let line = format!("rx host-{host}");
        let _ = line;
    }
}
