//! Seeded violations: allocating constructs inside an annotated hot-path
//! function.

#[cfg_attr(simlint, hot_path)]
pub fn begin_transmission_into(listeners: &[u32]) -> Vec<u32> {
    let mut changes = Vec::new();
    let tagged: Vec<String> = listeners
        .iter()
        .map(|l| format!("host-{l}"))
        .collect();
    changes.extend(tagged.iter().map(|t| t.len() as u32));
    let boxed = Box::new(changes.clone());
    let label = String::from("tx");
    let copy = listeners.to_vec();
    let mut batch = vec![0u32; 4];
    batch.extend(copy);
    let _ = (boxed, label, batch);
    Vec::default()
}
