//! Seeded violation three call-graph hops below the annotation: the
//! hot-path advance fn reaches an audit helper that copies a slice.

struct World;

impl World {
    #[cfg_attr(simlint, hot_path)]
    fn advance(&mut self) {
        self.drain();
    }

    fn drain(&mut self) {
        self.fanout();
    }

    fn fanout(&mut self) {
        self.audit();
    }

    fn audit(&mut self) {
        let snapshot = self.hosts.to_vec();
        let _ = snapshot;
    }
}
