//! Seeded violation: a new subsystem grabs a stream constant without
//! registering it, risking collision with existing streams.

fn wire(root: &SimRng) {
    let sneaky = root.fork(99);
    let _ = sneaky;
}
