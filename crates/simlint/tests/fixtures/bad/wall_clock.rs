//! Seeded violations: wall-clock reads that would make replay depend on
//! host speed.

use std::time::Instant;

fn jitter_seed() -> u64 {
    let epoch = SystemTime::now();
    let t = Instant::now();
    let _ = (epoch, t);
    0
}
