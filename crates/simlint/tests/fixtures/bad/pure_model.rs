//! Seeded violations: effectful calls inside a `pure_model`-annotated
//! state transition — an RNG draw, a stream fork, event-queue
//! scheduling and cancellation, and Medium mutation.

#[cfg_attr(simlint, pure_model)]
pub fn packet_heard(&mut self, now: SimTime, q: &mut EventQueue<Event>, m: &mut Medium) {
    let p = self.proto_rng.gen_unit_f64();
    let stream = self.proto_rng.fork(7);
    let key = q.schedule(now, Event::IssueBroadcast);
    q.cancel(key);
    m.begin_transmission(NodeId::new(0), now, airtime);
    m.finish_transmission(FrameId::from_raw(0));
    let _ = (p, stream);
}
