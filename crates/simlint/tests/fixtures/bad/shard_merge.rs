//! Seeded violations: hash containers inside annotated shard-merge
//! functions. Deterministic hashers don't save them — the merged event
//! order must be a pure function of (time, seq), never of iteration order.

use std::collections::{HashMap, HashSet};
use std::hash::BuildHasherDefault;

type DetState = BuildHasherDefault<SeqHasher>;

#[cfg_attr(simlint, shard_merge)]
pub fn merge_heads(times: &[u64]) -> Option<u64> {
    let mut heads: HashMap<usize, u64, DetState> = HashMap::default();
    for (i, &t) in times.iter().enumerate() {
        heads.insert(i, t);
    }
    heads.values().min().copied()
}

#[cfg_attr(simlint, shard_merge)]
pub fn drain_ready(ready: &mut Vec<u64>) {
    let mut seen: HashSet<u64, DetState> = HashSet::default();
    ready.retain(|&seq| seen.insert(seq));
}
