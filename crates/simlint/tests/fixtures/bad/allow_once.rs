//! Seeded violation: one allow directive suppresses exactly one
//! diagnostic — the second default-hasher map on the line below still
//! fires.

fn two_maps() {
    // simlint: allow(nondeterministic-iteration)
    let a = HashMap::<u32, u32>::new();
    let b: HashMap<u32, u32> = HashMap::new();
    let _ = (a, b);
}
