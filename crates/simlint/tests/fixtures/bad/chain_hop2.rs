//! Seeded violation two call-graph hops below the annotation: the
//! pure-model decision fn calls an assessor that calls a jitter helper
//! that draws from the RNG.

struct Gossip;

impl Gossip {
    #[cfg_attr(simlint, pure_model)]
    fn decide(&mut self, now: u64) {
        self.assess(now);
    }

    fn assess(&mut self, now: u64) {
        self.jitter(now);
    }

    fn jitter(&mut self, now: u64) {
        let j = self.rng.gen_range_u32(95..106);
        let _ = (now, j);
    }
}
