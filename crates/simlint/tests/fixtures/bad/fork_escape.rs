//! Seeded violation: a registered fork handle flows into a function the
//! workspace does not define, so the stream's draws can no longer be
//! audited.

fn seed_placement(root: &SimRng, hosts: &mut [Host]) {
    let mut placement = root.fork(9);
    external_shuffle(hosts, &mut placement);
}
