//! Seeded violation: two subsystems draw the same registered stream and
//! would consume each other's randomness.

fn wire(root: &SimRng) {
    let placement = root.fork(7);
    let also_placement = root.fork(7);
    let _ = (placement, also_placement);
}
