//! Seeded violation: nested acquisition against the ranked order in
//! LOCKS.md — `counts` (rank 2) is held while `writer` (rank 1) is
//! acquired.

use std::sync::Mutex;

struct Session {
    writer: Mutex<u32>,
    counts: Mutex<u32>,
}

impl Session {
    fn backwards(&self) {
        let c = self.counts.lock().unwrap();
        let w = self.writer.lock().unwrap();
        let _ = (c, w);
    }
}
