//! The lock-order registry (`LOCKS.md`) and the `lock-order` rule.
//!
//! The campaign server holds real mutexes across threads, and its
//! freedom from deadlock rests on one convention: locks are always
//! acquired in the same global order (writer before counts before the
//! queue's state). PR 9 wrote that convention into comments; this module
//! makes it a checked artifact. `LOCKS.md` declares each lock's rank,
//! and the rule derives the actual *acquired-while-held* graph from the
//! source — `.lock()` sites (plus `.read()`/`.write()` on receivers
//! declared as `RwLock`), guard live ranges, and calls made while a
//! guard is held, followed through the workspace call graph — then
//! errors on any cycle and on any edge that contradicts the declared
//! ranks.
//!
//! A lock's identity is `(crate, receiver identifier)`: `writer.lock()`
//! in `campaign` is the lock named `writer`, wherever the binding came
//! from. This is name-based, like the rest of simlint — precise enough
//! for a workspace that names its mutexes once, and checkable without
//! type inference. Guards bound with `let` are held to the end of the
//! enclosing block (or an explicit `drop(guard)`); temporary guards die
//! at the end of their statement. One known limit, documented in
//! DESIGN.md §16: a guard *returned* from a helper (`let st =
//! lock(&self.state)`) creates its held-range inside the helper's
//! caller only as far as the statement — cross-function guard returns
//! are not tracked, so long-lived helper guards should be acquired
//! directly where they are held.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use crate::graph::{Graph, NodeId};
use crate::lexer::{Token, TokenKind};
use crate::rules::{Diagnostic, RULE_LOCK_ORDER};

/// One declared lock rank.
#[derive(Debug, Clone)]
pub struct LockEntry {
    /// Acquisition rank; lower ranks are taken first.
    pub order: u32,
    /// 1-based registry line, for diagnostics.
    pub line: u32,
    /// Free-text notes column.
    pub notes: String,
}

/// The parsed `LOCKS.md` registry: `| order | crate | lock | notes |`
/// markdown rows. Rows whose order cell is not an integer are prose
/// (headers, separators) and are skipped.
#[derive(Debug, Default)]
pub struct LockRegistry {
    /// Path the registry was loaded from, for diagnostics.
    pub path: String,
    entries: BTreeMap<(String, String), LockEntry>,
    /// `(line, crate, lock)` of rows that repeat an existing key.
    pub duplicates: Vec<(u32, String, String)>,
}

impl LockRegistry {
    /// Parses registry text; never fails (non-table lines are prose).
    pub fn parse(path: &str, text: &str) -> LockRegistry {
        let mut registry = LockRegistry {
            path: path.to_string(),
            ..LockRegistry::default()
        };
        for (idx, line) in text.lines().enumerate() {
            let line_no = (idx + 1) as u32;
            let trimmed = line.trim();
            if !trimmed.starts_with('|') {
                continue;
            }
            let cells: Vec<&str> = trimmed
                .trim_matches('|')
                .split('|')
                .map(str::trim)
                .collect();
            if cells.len() < 3 {
                continue;
            }
            let Ok(order) = cells[0].parse::<u32>() else {
                continue;
            };
            let krate = cells[1].to_string();
            let name = cells[2].to_string();
            let notes = cells.get(3).copied().unwrap_or("").to_string();
            let key = (krate.clone(), name.clone());
            match registry.entries.entry(key) {
                std::collections::btree_map::Entry::Occupied(_) => {
                    registry.duplicates.push((line_no, krate, name));
                }
                std::collections::btree_map::Entry::Vacant(slot) => {
                    slot.insert(LockEntry {
                        order,
                        line: line_no,
                        notes,
                    });
                }
            }
        }
        registry
    }

    /// The declared entry for a `(crate, lock)` pair.
    pub fn get(&self, krate: &str, name: &str) -> Option<&LockEntry> {
        self.entries.get(&(krate.to_string(), name.to_string()))
    }

    /// All entries in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&(String, String), &LockEntry)> {
        self.entries.iter()
    }

    /// True when no rows parsed.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// `(crate, receiver ident)` — the identity of one lock.
type LockId = (String, String);

/// One direct acquisition site inside a function body.
struct Site {
    lock: LockId,
    /// Token index of the `lock`/`read`/`write` method name.
    tok: usize,
}

/// One acquired-while-held edge, first occurrence wins.
struct EdgeRec {
    file: String,
    line: u32,
    col: u32,
    /// Call path from the holding fn to the acquiring fn (displays);
    /// empty for a nested acquisition in the same body.
    chain: Vec<String>,
}

fn is_punct(code: &[Token], i: usize, text: &str) -> bool {
    code.get(i)
        .is_some_and(|t| t.kind == TokenKind::Punct && t.text == text)
}

fn is_ident(code: &[Token], i: usize, text: &str) -> bool {
    code.get(i)
        .is_some_and(|t| t.kind == TokenKind::Ident && t.text == text)
}

fn ident_at(code: &[Token], i: usize) -> Option<&str> {
    code.get(i)
        .filter(|t| t.kind == TokenKind::Ident)
        .map(|t| t.text.as_str())
}

/// Receivers declared with a `: RwLock<..>` type (field or binding),
/// per crate. `.read()`/`.write()` acquire only on these; everywhere
/// else those names are I/O (`FrameReader::read`, `Write::write`).
fn rwlock_receivers(graph: &Graph<'_>) -> BTreeSet<LockId> {
    let mut out = BTreeSet::new();
    for fv in graph.files {
        let code = fv.code;
        for i in 0..code.len() {
            if ident_at(code, i) != Some("RwLock") {
                continue;
            }
            // Walk back over the `std::sync::` path prefix, then demand
            // `name :` type-ascription position.
            let mut j = i;
            while j >= 3
                && is_punct(code, j - 1, ":")
                && is_punct(code, j - 2, ":")
                && ident_at(code, j - 3).is_some()
            {
                j -= 3;
            }
            if j >= 2 && is_punct(code, j - 1, ":") && !is_punct(code, j - 2, ":") {
                if let Some(name) = ident_at(code, j - 2) {
                    out.insert((fv.krate.to_string(), name.to_string()));
                }
            }
        }
    }
    out
}

/// Direct acquisition sites of every non-test function.
fn direct_acquires(graph: &Graph<'_>, rwlocks: &BTreeSet<LockId>) -> BTreeMap<NodeId, Vec<Site>> {
    let mut out: BTreeMap<NodeId, Vec<Site>> = BTreeMap::new();
    for (fi, fv) in graph.files.iter().enumerate() {
        if fv.test_target {
            continue;
        }
        for (ni, f) in fv.fns.iter().enumerate() {
            if f.in_cfg_test {
                continue;
            }
            let Some((start, end)) = f.body else {
                continue;
            };
            let code = fv.code;
            let mut sites = Vec::new();
            for i in start..end.min(code.len()) {
                let Some(method) = ident_at(code, i) else {
                    continue;
                };
                if !matches!(method, "lock" | "read" | "write") {
                    continue;
                }
                if i == 0 || !is_punct(code, i - 1, ".") || !is_punct(code, i + 1, "(") {
                    continue;
                }
                let Some(receiver) = ident_at(code, i.wrapping_sub(2)) else {
                    continue;
                };
                let lock = (fv.krate.to_string(), receiver.to_string());
                if method != "lock" && !rwlocks.contains(&lock) {
                    continue;
                }
                sites.push(Site { lock, tok: i });
            }
            if !sites.is_empty() {
                out.insert(NodeId(fi, ni), sites);
            }
        }
    }
    out
}

/// The guard's live token range `(site.tok, end_exclusive)`. `let`-bound
/// guards live to the end of the enclosing block or an explicit
/// `drop(name)`; temporaries die at the statement's `;`.
fn guard_range(code: &[Token], site_tok: usize, body_end: usize) -> (usize, usize) {
    // Receiver chain start: `self.shared.state.lock()` → index of `self`.
    let mut j = site_tok.wrapping_sub(2);
    while j >= 2 && is_punct(code, j - 1, ".") && ident_at(code, j - 2).is_some() {
        j -= 2;
    }
    let mut guard_name: Option<&str> = None;
    if j >= 2 && is_punct(code, j - 1, "=") {
        if let Some(name) = ident_at(code, j - 2) {
            let let_bound = is_ident(code, j.wrapping_sub(3), "let")
                || (is_ident(code, j.wrapping_sub(3), "mut")
                    && is_ident(code, j.wrapping_sub(4), "let"));
            if let_bound {
                guard_name = Some(name);
            }
        }
    }
    let mut depth = 0i32;
    let mut k = site_tok + 1;
    while k < body_end.min(code.len()) {
        let t = &code[k];
        if t.kind == TokenKind::Punct {
            match t.text.as_str() {
                "{" => depth += 1,
                "}" => {
                    if depth == 0 {
                        return (site_tok, k);
                    }
                    depth -= 1;
                }
                ";" if depth == 0 && guard_name.is_none() => return (site_tok, k),
                _ => {}
            }
        }
        if let Some(name) = guard_name {
            if is_ident(code, k, "drop")
                && is_punct(code, k + 1, "(")
                && is_ident(code, k + 2, name)
            {
                return (site_tok, k);
            }
        }
        k += 1;
    }
    (site_tok, body_end)
}

/// Locks transitively acquired by calling `from`, with the call path
/// `[from, .., acquiring fn]` and the acquisition site.
fn trans_acquires(
    graph: &Graph<'_>,
    acquires: &BTreeMap<NodeId, Vec<Site>>,
    from: NodeId,
) -> Vec<(LockId, Vec<NodeId>, NodeId, usize)> {
    let mut parent: BTreeMap<NodeId, NodeId> = BTreeMap::new();
    parent.insert(from, from);
    let mut queue = VecDeque::from([from]);
    let mut found = Vec::new();
    while let Some(at) = queue.pop_front() {
        if let Some(sites) = acquires.get(&at) {
            for site in sites {
                let mut path = vec![at];
                let mut cur = at;
                while parent[&cur] != cur {
                    cur = parent[&cur];
                    path.push(cur);
                }
                path.reverse();
                found.push((site.lock.clone(), path, at, site.tok));
            }
        }
        for to in graph.edges(at) {
            if let std::collections::btree_map::Entry::Vacant(e) = parent.entry(to) {
                e.insert(at);
                queue.push_back(to);
            }
        }
    }
    found
}

/// Runs the lock-order analysis. `workspace` additionally demands that
/// every acquired lock is registered and every registered lock is
/// acquired somewhere (the registry cannot rot).
pub fn check(graph: &Graph<'_>, registry: &LockRegistry, workspace: bool) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for (line, krate, name) in &registry.duplicates {
        diags.push(Diagnostic {
            file: registry.path.clone(),
            line: *line,
            col: 1,
            rule: RULE_LOCK_ORDER,
            message: format!("duplicate registry row for lock `{name}` in crate `{krate}`"),
            chain: Vec::new(),
        });
    }

    let rwlocks = rwlock_receivers(graph);
    let acquires = direct_acquires(graph, &rwlocks);

    // Acquired-while-held edges, first witness per (holder, acquired).
    let mut edges: BTreeMap<(LockId, LockId), EdgeRec> = BTreeMap::new();
    let mut first_site: BTreeMap<LockId, (String, u32, u32)> = BTreeMap::new();
    for (&node, sites) in &acquires {
        let fv = &graph.files[node.0];
        let body_end = fv.fns[node.1].body.map(|(_, e)| e).unwrap_or(0);
        for site in sites {
            let tok = &fv.code[site.tok];
            first_site
                .entry(site.lock.clone())
                .or_insert_with(|| (fv.file.to_string(), tok.line, tok.col));
            let (_, held_end) = guard_range(fv.code, site.tok, body_end);
            // Nested direct acquisitions while this guard is live.
            for other in sites {
                if other.tok > site.tok && other.tok < held_end {
                    let at = &fv.code[other.tok];
                    edges
                        .entry((site.lock.clone(), other.lock.clone()))
                        .or_insert_with(|| EdgeRec {
                            file: fv.file.to_string(),
                            line: at.line,
                            col: at.col,
                            chain: Vec::new(),
                        });
                }
            }
            // Calls made while the guard is live: everything the callee
            // transitively acquires is acquired under this lock.
            if let Some(calls) = graph.calls.get(&node) {
                for call in calls {
                    if call.tok <= site.tok || call.tok >= held_end {
                        continue;
                    }
                    let at = &fv.code[call.tok];
                    for callee in &call.resolved {
                        for (lock, path, _, _) in trans_acquires(graph, &acquires, *callee) {
                            let mut chain = vec![graph.display(node)];
                            chain.extend(path.iter().map(|n| graph.display(*n)));
                            edges
                                .entry((site.lock.clone(), lock))
                                .or_insert_with(|| EdgeRec {
                                    file: fv.file.to_string(),
                                    line: at.line,
                                    col: at.col,
                                    chain,
                                });
                        }
                    }
                }
            }
        }
    }

    // Declared-order violations.
    for ((held, acquired), rec) in &edges {
        let (Some(h), Some(a)) = (
            registry.get(&held.0, &held.1),
            registry.get(&acquired.0, &acquired.1),
        ) else {
            continue;
        };
        if h.order > a.order {
            diags.push(Diagnostic {
                file: rec.file.clone(),
                line: rec.line,
                col: rec.col,
                rule: RULE_LOCK_ORDER,
                message: format!(
                    "lock `{}` (crate `{}`, rank {}) acquired while holding `{}` \
                     (crate `{}`, rank {}): violates the declared order in {}",
                    acquired.1, acquired.0, a.order, held.1, held.0, h.order, registry.path
                ),
                chain: rec.chain.clone(),
            });
        }
    }

    // Cycles (including self-edges: re-acquiring a held std Mutex is a
    // guaranteed deadlock). DFS over the sorted lock set; every back
    // edge is reported once, at its witness site.
    let mut adj: BTreeMap<&LockId, Vec<&LockId>> = BTreeMap::new();
    for (held, acquired) in edges.keys() {
        adj.entry(held).or_default().push(acquired);
    }
    let lock_label = |l: &LockId| format!("{}::{}", l.0, l.1);
    let mut done: BTreeSet<&LockId> = BTreeSet::new();
    for &start in adj.keys().collect::<Vec<_>>() {
        if done.contains(start) {
            continue;
        }
        let mut stack: Vec<(&LockId, usize)> = vec![(start, 0)];
        let mut on_stack: Vec<&LockId> = vec![start];
        while let Some((at, next)) = stack.last_mut() {
            let succs = adj.get(*at).map(Vec::as_slice).unwrap_or(&[]);
            if *next < succs.len() {
                let to = succs[*next];
                *next += 1;
                if let Some(pos) = on_stack.iter().position(|l| l == &to) {
                    // Back edge `at → to` closes a cycle.
                    let rec = &edges[&((*at).clone(), to.clone())];
                    let mut labels: Vec<String> =
                        on_stack[pos..].iter().map(|l| lock_label(l)).collect();
                    labels.push(lock_label(to));
                    diags.push(Diagnostic {
                        file: rec.file.clone(),
                        line: rec.line,
                        col: rec.col,
                        rule: RULE_LOCK_ORDER,
                        message: format!("lock acquisition cycle: {}", labels.join(" → ")),
                        chain: rec.chain.clone(),
                    });
                } else if !done.contains(to) {
                    stack.push((to, 0));
                    on_stack.push(to);
                }
            } else {
                done.insert(*at);
                on_stack.pop();
                stack.pop();
            }
        }
    }

    if workspace {
        for (lock, (file, line, col)) in &first_site {
            if registry.get(&lock.0, &lock.1).is_none() {
                diags.push(Diagnostic {
                    file: file.clone(),
                    line: *line,
                    col: *col,
                    rule: RULE_LOCK_ORDER,
                    message: format!(
                        "lock `{}` in crate `{}` is not registered in {}",
                        lock.1,
                        lock.0,
                        if registry.path.is_empty() {
                            "the lock registry (pass --locks LOCKS.md)"
                        } else {
                            &registry.path
                        }
                    ),
                    chain: Vec::new(),
                });
            }
        }
        for ((krate, name), entry) in registry.iter() {
            if !first_site.contains_key(&(krate.clone(), name.clone())) {
                diags.push(Diagnostic {
                    file: registry.path.clone(),
                    line: entry.line,
                    col: 1,
                    rule: RULE_LOCK_ORDER,
                    message: format!(
                        "registered lock `{name}` for crate `{krate}` (\"{}\") has no \
                         acquisition site; remove the row",
                        entry.notes
                    ),
                    chain: Vec::new(),
                });
            }
        }
    }
    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::parse_fns;
    use crate::graph::FileView;
    use crate::lexer::lex;

    struct Owned {
        code: Vec<Token>,
        fns: Vec<crate::ast::ParsedFn>,
    }

    fn owned(src: &str) -> Owned {
        let code: Vec<Token> = lex(src)
            .into_iter()
            .filter(|t| !matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment))
            .collect();
        let fns = parse_fns(&code);
        Owned { code, fns }
    }

    fn run(src: &str, registry: &LockRegistry, workspace: bool) -> Vec<Diagnostic> {
        let o = owned(src);
        let files = vec![FileView {
            code: &o.code,
            fns: &o.fns,
            fields: &[],
            file: "t.rs",
            krate: "fixture",
            stem: "t",
            test_target: false,
        }];
        let graph = Graph::build(&files);
        check(&graph, registry, workspace)
    }

    #[test]
    fn registry_parses_ranked_rows_and_flags_duplicates() {
        let reg = LockRegistry::parse(
            "LOCKS.md",
            "| order | crate | lock | notes |\n\
             |---|---|---|---|\n\
             | 1 | campaign | writer | stream |\n\
             | 2 | campaign | counts | totals |\n\
             | 2 | campaign | counts | again |\n",
        );
        assert_eq!(reg.get("campaign", "writer").unwrap().order, 1);
        assert_eq!(reg.duplicates.len(), 1);
    }

    #[test]
    fn nested_acquisition_against_declared_order_errors() {
        let reg = LockRegistry::parse(
            "LOCKS.md",
            "| 1 | fixture | writer | |\n| 2 | fixture | counts | |\n",
        );
        let ok = run(
            "fn good(&self) { let w = self.writer.lock(); self.counts.lock(); }\n",
            &reg,
            false,
        );
        assert!(ok.is_empty(), "{ok:?}");
        let bad = run(
            "fn bad(&self) { let c = self.counts.lock(); self.writer.lock(); }\n",
            &reg,
            false,
        );
        assert_eq!(bad.len(), 1, "{bad:?}");
        assert!(bad[0].message.contains("violates the declared order"));
    }

    #[test]
    fn sequential_guards_do_not_create_edges() {
        let reg = LockRegistry::parse(
            "LOCKS.md",
            "| 1 | fixture | writer | |\n| 2 | fixture | counts | |\n",
        );
        // Temporary guards die at their statement; no held-across edge.
        let diags = run(
            "fn fine(&self) { self.counts.lock().n += 1; self.writer.lock().flush(); }\n",
            &reg,
            false,
        );
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn drop_releases_a_let_bound_guard() {
        let reg = LockRegistry::parse(
            "LOCKS.md",
            "| 1 | fixture | writer | |\n| 2 | fixture | counts | |\n",
        );
        let diags = run(
            "fn fine(&self) { let c = self.counts.lock(); use_it(&c); drop(c); \
             self.writer.lock(); }\n",
            &reg,
            false,
        );
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn cycles_error_without_any_registry() {
        let diags = run(
            "fn ab(&self) { let a = self.alpha.lock(); self.beta.lock(); }\n\
             fn ba(&self) { let b = self.beta.lock(); self.alpha.lock(); }\n",
            &LockRegistry::default(),
            false,
        );
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert!(diags[0].message.contains("lock acquisition cycle"));
    }

    #[test]
    fn interprocedural_edges_carry_call_chains() {
        let reg = LockRegistry::parse(
            "LOCKS.md",
            "| 1 | fixture | writer | |\n| 2 | fixture | state | |\n",
        );
        let src = "struct S;\n\
             impl S {\n\
                 fn outer(&self) { let w = self.writer.lock(); self.submit(1); }\n\
                 fn submit(&self, x: u32) { helper(&self.state); }\n\
             }\n\
             fn helper(state: &Mutex<u32>) { let s = state.lock(); }\n";
        let diags = run(src, &reg, false);
        assert!(diags.is_empty(), "declared order holds: {diags:?}");
        let reg_rev = LockRegistry::parse(
            "LOCKS.md",
            "| 2 | fixture | writer | |\n| 1 | fixture | state | |\n",
        );
        let diags = run(src, &reg_rev, false);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(
            diags[0].chain,
            vec!["t::outer", "t::submit", "t::helper"],
            "witness chain names the call path"
        );
    }

    #[test]
    fn read_write_acquire_only_on_declared_rwlocks() {
        // FrameWriter-style `.write()` on a plain field is I/O, not a lock.
        let diags = run(
            "struct S { table: std::sync::RwLock<u32> }\n\
             fn io(&self) { let w = self.writer.lock(); self.out.write(b); }\n\
             fn rw(&self) { let g = self.table.read(); self.table.write(); }\n",
            &LockRegistry::default(),
            false,
        );
        // `table` read-then-write is a self-edge → cycle (upgrade deadlock).
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert!(
            diags[0].message.contains("table → fixture::table"),
            "{diags:?}"
        );
    }

    #[test]
    fn workspace_mode_demands_registration_and_liveness() {
        let reg = LockRegistry::parse(
            "LOCKS.md",
            "| 1 | fixture | writer | stream |\n| 2 | fixture | ghost | gone |\n",
        );
        let diags = run(
            "fn f(&self) { let w = self.writer.lock(); }\n\
             fn g(&self) { let q = self.rogue.lock(); }\n",
            &reg,
            true,
        );
        assert_eq!(diags.len(), 2, "{diags:?}");
        assert!(diags
            .iter()
            .any(|d| d.message.contains("`rogue`") && d.message.contains("not registered")));
        assert!(diags
            .iter()
            .any(|d| d.message.contains("`ghost`") && d.message.contains("no acquisition site")));
    }
}
