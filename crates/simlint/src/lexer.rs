//! A hand-rolled Rust lexer.
//!
//! The linter works on tokens, not regexes, so `"HashMap"` inside a string
//! literal or a code sample in a comment can never false-positive. The
//! lexer handles the full literal grammar the workspace uses: cooked and
//! raw strings (any `#` depth, `b`/`c` prefixes), char literals vs
//! lifetimes, nested block comments, raw identifiers, and numeric literals
//! with separators, exponents, and type suffixes.
//!
//! Comments are kept as tokens — `// simlint: allow(...)` directives live
//! in them — and rules filter them out when walking code.

use std::fmt;

/// What kind of lexeme a [`Token`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`fn`, `HashMap`, `r#use`).
    Ident,
    /// Integer literal (`42`, `10_000`, `0xFF`).
    Int,
    /// Float literal (`1.5`, `1e-9`, `2f64`).
    Float,
    /// String literal of any flavor (`"x"`, `r#"x"#`, `b"x"`, `c"x"`).
    Str,
    /// Character or byte literal (`'a'`, `b'\n'`).
    Char,
    /// Lifetime (`'a`, `'_`, `'static`).
    Lifetime,
    /// A single punctuation character (`::` arrives as two `:` tokens).
    Punct,
    /// `// ...` comment, including doc comments; text excludes the newline.
    LineComment,
    /// `/* ... */` comment, possibly nested.
    BlockComment,
}

/// One lexeme with its 1-based source position.
#[derive(Debug, Clone)]
pub struct Token {
    /// The kind of lexeme.
    pub kind: TokenKind,
    /// The source text of the lexeme.
    pub text: String,
    /// 1-based source line.
    pub line: u32,
    /// 1-based source column, in characters.
    pub col: u32,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}:{:?}:{}",
            self.line, self.col, self.kind, self.text
        )
    }
}

struct Cursor<'a> {
    chars: std::iter::Peekable<std::str::Chars<'a>>,
    line: u32,
    col: u32,
}

impl<'a> Cursor<'a> {
    fn new(source: &'a str) -> Self {
        Cursor {
            chars: source.chars().peekable(),
            line: 1,
            col: 1,
        }
    }

    fn peek(&mut self) -> Option<char> {
        self.chars.peek().copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.next()?;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Lexes `source` into a token stream, comments included.
///
/// The lexer is total: any byte sequence produces *some* token stream
/// (unknown characters become single-char [`TokenKind::Punct`] tokens), so
/// a file that fails to compile still gets linted as far as possible.
pub fn lex(source: &str) -> Vec<Token> {
    let mut cur = Cursor::new(source);
    let mut tokens = Vec::new();

    while let Some(c) = cur.peek() {
        let line = cur.line;
        let col = cur.col;
        if c.is_whitespace() {
            cur.bump();
            continue;
        }
        if c == '/' {
            let mut text = String::new();
            text.push(cur.bump().expect("peeked"));
            match cur.peek() {
                Some('/') => {
                    while let Some(n) = cur.peek() {
                        if n == '\n' {
                            break;
                        }
                        text.push(cur.bump().expect("peeked"));
                    }
                    tokens.push(Token {
                        kind: TokenKind::LineComment,
                        text,
                        line,
                        col,
                    });
                }
                Some('*') => {
                    text.push(cur.bump().expect("peeked"));
                    let mut depth = 1u32;
                    let mut prev = '\0';
                    while depth > 0 {
                        let Some(n) = cur.bump() else { break };
                        text.push(n);
                        if prev == '/' && n == '*' {
                            depth += 1;
                            prev = '\0';
                        } else if prev == '*' && n == '/' {
                            depth -= 1;
                            prev = '\0';
                        } else {
                            prev = n;
                        }
                    }
                    tokens.push(Token {
                        kind: TokenKind::BlockComment,
                        text,
                        line,
                        col,
                    });
                }
                _ => tokens.push(Token {
                    kind: TokenKind::Punct,
                    text,
                    line,
                    col,
                }),
            }
            continue;
        }
        if c == '"' {
            tokens.push(lex_cooked_string(&mut cur, String::new(), line, col));
            continue;
        }
        if c == '\'' {
            tokens.push(lex_char_or_lifetime(&mut cur, line, col));
            continue;
        }
        if c.is_ascii_digit() {
            tokens.push(lex_number(&mut cur, line, col));
            continue;
        }
        if is_ident_start(c) {
            tokens.push(lex_ident_or_prefixed(&mut cur, line, col));
            continue;
        }
        let mut text = String::new();
        text.push(cur.bump().expect("peeked"));
        tokens.push(Token {
            kind: TokenKind::Punct,
            text,
            line,
            col,
        });
    }
    tokens
}

/// Lexes a `"..."` body; `text` already holds any consumed prefix (`b`,
/// `c`). The opening quote has not been consumed yet.
fn lex_cooked_string(cur: &mut Cursor<'_>, mut text: String, line: u32, col: u32) -> Token {
    text.push(cur.bump().expect("open quote"));
    loop {
        match cur.bump() {
            None => break,
            Some('\\') => {
                text.push('\\');
                if let Some(esc) = cur.bump() {
                    text.push(esc);
                }
            }
            Some('"') => {
                text.push('"');
                break;
            }
            Some(other) => text.push(other),
        }
    }
    Token {
        kind: TokenKind::Str,
        text,
        line,
        col,
    }
}

/// Lexes `r"..."` / `r#"..."#` with any `#` depth; `text` holds the prefix
/// consumed so far (`r`, `br`, `cr`). The cursor sits at the first `#` or
/// the opening quote.
fn lex_raw_string(cur: &mut Cursor<'_>, mut text: String, line: u32, col: u32) -> Token {
    let mut hashes = 0usize;
    while cur.peek() == Some('#') {
        text.push(cur.bump().expect("peeked"));
        hashes += 1;
    }
    if cur.peek() == Some('"') {
        text.push(cur.bump().expect("peeked"));
        let mut closing = 0usize;
        let mut in_close = false;
        while let Some(n) = cur.bump() {
            text.push(n);
            if in_close {
                if n == '#' {
                    closing += 1;
                    if closing == hashes {
                        break;
                    }
                    continue;
                }
                in_close = false;
            }
            if n == '"' {
                if hashes == 0 {
                    break;
                }
                in_close = true;
                closing = 0;
            }
        }
    }
    Token {
        kind: TokenKind::Str,
        text,
        line,
        col,
    }
}

fn lex_char_or_lifetime(cur: &mut Cursor<'_>, line: u32, col: u32) -> Token {
    let mut text = String::new();
    text.push(cur.bump().expect("quote"));
    match cur.peek() {
        Some('\\') => {
            // Escaped char literal: '\n', '\u{1F}', '\''.
            text.push(cur.bump().expect("peeked"));
            if let Some(esc) = cur.bump() {
                text.push(esc);
                if esc == 'u' && cur.peek() == Some('{') {
                    while let Some(n) = cur.bump() {
                        text.push(n);
                        if n == '}' {
                            break;
                        }
                    }
                }
            }
            if cur.peek() == Some('\'') {
                text.push(cur.bump().expect("peeked"));
            }
            Token {
                kind: TokenKind::Char,
                text,
                line,
                col,
            }
        }
        Some(c) if is_ident_start(c) => {
            // Could be 'a' (char) or 'a / 'static (lifetime): a lifetime
            // is an identifier not followed by a closing quote.
            text.push(cur.bump().expect("peeked"));
            if cur.peek() == Some('\'') {
                text.push(cur.bump().expect("peeked"));
                return Token {
                    kind: TokenKind::Char,
                    text,
                    line,
                    col,
                };
            }
            while let Some(n) = cur.peek() {
                if !is_ident_continue(n) {
                    break;
                }
                text.push(cur.bump().expect("peeked"));
            }
            Token {
                kind: TokenKind::Lifetime,
                text,
                line,
                col,
            }
        }
        Some(_) => {
            // Non-identifier char literal: '+', ' ', '\u{7f}' handled above.
            text.push(cur.bump().expect("peeked"));
            if cur.peek() == Some('\'') {
                text.push(cur.bump().expect("peeked"));
            }
            Token {
                kind: TokenKind::Char,
                text,
                line,
                col,
            }
        }
        None => Token {
            kind: TokenKind::Char,
            text,
            line,
            col,
        },
    }
}

fn lex_number(cur: &mut Cursor<'_>, line: u32, col: u32) -> Token {
    let mut text = String::new();
    let mut is_float = false;
    let first = cur.bump().expect("digit");
    text.push(first);

    let radix_prefix =
        first == '0' && matches!(cur.peek(), Some('x' | 'X' | 'o' | 'O' | 'b' | 'B')) && {
            text.push(cur.bump().expect("peeked"));
            true
        };

    loop {
        match cur.peek() {
            Some(c) if c.is_ascii_alphanumeric() || c == '_' => {
                if !radix_prefix && (c == 'e' || c == 'E') {
                    // Exponent: consume the sign too, if present. A
                    // trailing ident char after 'e' that is not a digit
                    // (e.g. `2ee`) is nonsense the compiler rejects;
                    // lexing it into one token is fine for linting.
                    text.push(cur.bump().expect("peeked"));
                    if matches!(cur.peek(), Some('+' | '-')) {
                        is_float = true;
                        text.push(cur.bump().expect("peeked"));
                    }
                    continue;
                }
                text.push(cur.bump().expect("peeked"));
            }
            Some('.') => {
                // `1..5` is a range, `1.max(2)` a method call; only
                // `digit . digit` continues the literal as a float.
                let mut ahead = cur.chars.clone();
                ahead.next();
                match ahead.peek() {
                    Some(d) if d.is_ascii_digit() => {
                        is_float = true;
                        text.push(cur.bump().expect("peeked"));
                    }
                    _ => break,
                }
            }
            _ => break,
        }
    }
    if !radix_prefix && (text.contains('.') || text.ends_with("f32") || text.ends_with("f64")) {
        is_float = true;
    }
    Token {
        kind: if is_float {
            TokenKind::Float
        } else {
            TokenKind::Int
        },
        text,
        line,
        col,
    }
}

fn lex_ident_or_prefixed(cur: &mut Cursor<'_>, line: u32, col: u32) -> Token {
    let mut text = String::new();
    text.push(cur.bump().expect("ident start"));

    // String-literal prefixes: r" r#" b" br" c" cr" b' — and the raw
    // identifier r#ident. Check before consuming more ident chars.
    loop {
        let prefix = text.as_str();
        match (prefix, cur.peek()) {
            ("r" | "br" | "cr", Some('#')) => {
                // `r#"..."#` raw string or `r#ident` raw identifier:
                // look one past the `#` run to decide.
                let mut ahead = cur.chars.clone();
                let mut hashes = 0;
                while ahead.peek() == Some(&'#') {
                    ahead.next();
                    hashes += 1;
                }
                if ahead.peek() == Some(&'"') {
                    return lex_raw_string(cur, text, line, col);
                }
                if prefix == "r" && hashes == 1 {
                    text.push(cur.bump().expect("peeked"));
                    break; // raw identifier: fall through to ident loop
                }
                break;
            }
            ("r" | "br" | "cr", Some('"')) => return lex_raw_string(cur, text, line, col),
            ("b" | "c", Some('"')) => return lex_cooked_string(cur, text, line, col),
            ("b", Some('\'')) => {
                let mut tok = lex_char_or_lifetime(cur, line, col);
                tok.text.insert(0, 'b');
                return tok;
            }
            ("b" | "c", Some('r')) => {
                // Maybe `br"` / `cr"`: consume the `r` and loop.
                let mut ahead = cur.chars.clone();
                ahead.next();
                if matches!(ahead.peek(), Some('"' | '#')) {
                    text.push(cur.bump().expect("peeked"));
                    continue;
                }
                break;
            }
            _ => break,
        }
    }

    while let Some(c) = cur.peek() {
        if !is_ident_continue(c) {
            break;
        }
        text.push(cur.bump().expect("peeked"));
    }
    Token {
        kind: TokenKind::Ident,
        text,
        line,
        col,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn idents_and_puncts() {
        let toks = kinds("fn main() { a::b }");
        assert_eq!(
            toks,
            vec![
                (TokenKind::Ident, "fn".into()),
                (TokenKind::Ident, "main".into()),
                (TokenKind::Punct, "(".into()),
                (TokenKind::Punct, ")".into()),
                (TokenKind::Punct, "{".into()),
                (TokenKind::Ident, "a".into()),
                (TokenKind::Punct, ":".into()),
                (TokenKind::Punct, ":".into()),
                (TokenKind::Ident, "b".into()),
                (TokenKind::Punct, "}".into()),
            ]
        );
    }

    #[test]
    fn strings_do_not_leak_contents_as_idents() {
        let toks = kinds(r#"let x = "HashMap::new() /* vec![] */";"#);
        assert!(toks
            .iter()
            .all(|(k, t)| *k != TokenKind::Ident || t != "HashMap"));
        assert_eq!(toks.iter().filter(|(k, _)| *k == TokenKind::Str).count(), 1);
    }

    #[test]
    fn raw_strings_with_hashes() {
        let toks = kinds(r###"let x = r#"quote " inside"#; y"###);
        let s = toks.iter().find(|(k, _)| *k == TokenKind::Str).unwrap();
        assert!(s.1.contains("quote"));
        assert_eq!(toks.last().unwrap().1, "y");
    }

    #[test]
    fn byte_and_c_strings() {
        let toks = kinds(r##"b"bytes" c"cstr" br#"raw"# b'x'"##);
        assert_eq!(toks.iter().filter(|(k, _)| *k == TokenKind::Str).count(), 3);
        assert_eq!(
            toks.iter().filter(|(k, _)| *k == TokenKind::Char).count(),
            1
        );
    }

    #[test]
    fn lifetimes_vs_chars() {
        let toks = kinds("fn f<'a>(x: &'a str) { let c = 'a'; let n = '\\n'; }");
        assert_eq!(
            toks.iter()
                .filter(|(k, _)| *k == TokenKind::Lifetime)
                .count(),
            2
        );
        assert_eq!(
            toks.iter().filter(|(k, _)| *k == TokenKind::Char).count(),
            2
        );
    }

    #[test]
    fn numbers_classify_int_vs_float() {
        let toks = kinds("10_000 0xFF 1.5 1e-9 2f64 3u32 1..4 0.to_string()");
        let by_text: Vec<(TokenKind, &str)> = toks.iter().map(|(k, t)| (*k, t.as_str())).collect();
        assert!(by_text.contains(&(TokenKind::Int, "10_000")));
        assert!(by_text.contains(&(TokenKind::Int, "0xFF")));
        assert!(by_text.contains(&(TokenKind::Float, "1.5")));
        assert!(by_text.contains(&(TokenKind::Float, "1e-9")));
        assert!(by_text.contains(&(TokenKind::Float, "2f64")));
        assert!(by_text.contains(&(TokenKind::Int, "3u32")));
        // Ranges and method calls do not swallow the dot.
        assert!(by_text.contains(&(TokenKind::Int, "1")));
        assert!(by_text.contains(&(TokenKind::Int, "4")));
        assert!(by_text.contains(&(TokenKind::Int, "0")));
        assert!(by_text.contains(&(TokenKind::Ident, "to_string")));
    }

    #[test]
    fn comments_are_tokens_with_positions() {
        let toks = lex("a // trailing\n/* block\nspans */ b");
        assert_eq!(toks[1].kind, TokenKind::LineComment);
        assert_eq!(toks[1].line, 1);
        assert_eq!(toks[2].kind, TokenKind::BlockComment);
        assert_eq!(toks[3].text, "b");
        assert_eq!(toks[3].line, 3);
    }

    #[test]
    fn nested_block_comments() {
        let toks = kinds("/* outer /* inner */ still comment */ x");
        assert_eq!(toks.len(), 2);
        assert_eq!(toks[1].1, "x");
    }

    #[test]
    fn raw_identifier() {
        let toks = kinds("let r#use = 1;");
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Ident && t == "r#use"));
    }

    #[test]
    fn positions_are_one_based_chars() {
        let toks = lex("αβ x");
        let x = toks.iter().find(|t| t.text == "x").unwrap();
        assert_eq!((x.line, x.col), (1, 4));
    }
}
