//! # simlint
//!
//! In-tree static analysis for the workspace's determinism and hot-path
//! invariants. The reproduction's headline guarantees — bit-identical
//! replay, parallel == sequential fan-out, byte-identical
//! `manet-broadcast-metrics/1` reports, allocation-free steady-state hot
//! paths — are runtime-checked by a handful of e2e tests; `simlint`
//! enforces the underlying *source* invariants on every line of every PR:
//!
//! | rule id | invariant |
//! |---------|-----------|
//! | `nondeterministic-iteration` | no default-hasher `HashMap`/`HashSet` in sim crates |
//! | `wall-clock` | no `Instant`/`SystemTime` reads outside bench/testkit |
//! | `rng-fork-discipline` | literal `fork(N)` streams registered in `FORKS.md`, unique per crate |
//! | `hot-path-alloc` | `#[cfg_attr(simlint, hot_path)]` fns — and everything they reach — free of allocating constructs |
//! | `pure-model-effect` | `#[cfg_attr(simlint, pure_model)]` fns — and everything they reach — free of RNG, queue, and Medium effects |
//! | `float-event-key` | no `f32`/`f64` fields in `Ord`/`PartialOrd` types in sim crates |
//! | `shard-boundary` | `#[cfg_attr(simlint, shard_merge)]` fns — and everything they reach — free of `HashMap`/`HashSet` |
//! | `epoch-barrier` | `#[cfg_attr(simlint, epoch_shard)]` fns free of RNG draws, `event_seq`, `Medium` mutation (globals checked transitively) |
//! | `serve-loop-block` | `#[cfg_attr(simlint, serve_loop)]` fns free of slurps, unbounded growth, wall clock |
//! | `lock-order` | `.lock()`/`.read()`/`.write()` acquisition graph acyclic and ranked per `LOCKS.md` |
//! | `fork-escape` | literal `fork(N)` handles never flow into non-workspace functions |
//! | `unused-allow` | every allow directive suppresses something |
//!
//! Diagnostics are deny-by-default with `file:line:col` spans; a
//! `// simlint: allow(<rule>, ...)` comment on the offending line or the
//! line above suppresses exactly one diagnostic per listed rule, and
//! unknown rule names in a directive are themselves an error
//! (`unknown-rule`).
//!
//! The front end is a hand-rolled Rust lexer (strings, raw strings,
//! char-vs-lifetime, nested block comments, numeric literals) so code
//! samples inside strings or comments never false-positive; on top of it
//! [`ast`] parses items and functions, [`graph`] builds the
//! workspace-wide symbol table and call graph for transitive annotation
//! propagation, and [`locks`] derives the lock-acquisition graph. Zero
//! dependencies, like everything else in the tree.

#![warn(missing_docs)]

pub mod ast;
pub mod forks;
pub mod graph;
pub mod lexer;
pub mod locks;
pub mod rules;

pub use forks::ForkRegistry;
pub use locks::LockRegistry;
pub use rules::{CrateContext, Diagnostic, Linter, ALL_RULES};

use std::path::{Path, PathBuf};

/// Directories scanned inside the workspace root and inside each crate.
const TARGET_DIRS: &[&str] = &["src", "tests", "examples", "benches"];

/// Recursively collects `.rs` files under `dir`. The linter's own
/// seeded-violation corpus is excluded by explicit path rule: a
/// directory named `fixtures` whose parent is named `tests` (i.e.
/// `tests/fixtures/**`) is skipped; any other `fixtures` directory is
/// linted like normal source.
fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            let is_fixture_corpus = path.file_name().is_some_and(|n| n == "fixtures")
                && path
                    .parent()
                    .and_then(Path::file_name)
                    .is_some_and(|n| n == "tests");
            if is_fixture_corpus {
                continue;
            }
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|ext| ext == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Enumerates every lintable `.rs` file in the workspace, returned as
/// workspace-relative paths in deterministic (sorted) order.
pub fn workspace_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    for dir in TARGET_DIRS {
        let path = root.join(dir);
        if path.is_dir() {
            collect_rs(&path, &mut files)?;
        }
    }
    let crates = root.join("crates");
    if crates.is_dir() {
        let mut members: Vec<PathBuf> = std::fs::read_dir(&crates)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.is_dir())
            .collect();
        members.sort();
        for member in members {
            for dir in TARGET_DIRS {
                let path = member.join(dir);
                if path.is_dir() {
                    collect_rs(&path, &mut files)?;
                }
            }
        }
    }
    Ok(files
        .into_iter()
        .map(|f| f.strip_prefix(root).map(Path::to_path_buf).unwrap_or(f))
        .collect())
}

/// Walks upward from `start` to the directory whose `Cargo.toml` declares
/// `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if manifest.is_file() {
            if let Ok(text) = std::fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    return Some(d);
                }
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

/// Lints the whole workspace under `root` against the registries,
/// returning the sorted diagnostics. Stale fork-registry rows and
/// unregistered/stale locks are errors here.
pub fn lint_workspace(
    root: &Path,
    forks: ForkRegistry,
    locks: LockRegistry,
) -> std::io::Result<Vec<Diagnostic>> {
    let mut linter = Linter::new(forks, locks);
    for rel in workspace_files(root)? {
        let label = rel.to_string_lossy().replace('\\', "/");
        let source = std::fs::read_to_string(root.join(&rel))?;
        let ctx = CrateContext::for_workspace_path(&label);
        linter.lint_file(&label, &source, &ctx);
    }
    linter.finish(true);
    Ok(linter.diagnostics)
}

/// Lints explicitly listed files in fixture context (every rule active;
/// stale registry rows are not checked, since the file list is partial).
pub fn lint_paths(
    paths: &[PathBuf],
    forks: ForkRegistry,
    locks: LockRegistry,
) -> std::io::Result<Vec<Diagnostic>> {
    let mut linter = Linter::new(forks, locks);
    let ctx = CrateContext::fixture();
    for path in paths {
        let label = path.to_string_lossy().replace('\\', "/");
        let source = std::fs::read_to_string(path)?;
        linter.lint_file(&label, &source, &ctx);
    }
    linter.finish(false);
    Ok(linter.diagnostics)
}
