//! `simlint` CLI.
//!
//! ```text
//! simlint --workspace              lint the whole workspace (CI tier-1 mode)
//! simlint [--forks F] [--locks L] FILE...
//!                                  lint specific files in fixture context
//! simlint --json ...               machine-readable diagnostics (one JSON
//!                                  object per line)
//! ```
//!
//! Exit codes: 0 clean, 1 diagnostics found, 2 usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

use simlint::{
    find_workspace_root, lint_paths, lint_workspace, Diagnostic, ForkRegistry, LockRegistry,
};

const USAGE: &str = "\
usage: simlint --workspace [--forks FORKS.md] [--locks LOCKS.md] [--json]
       simlint [--forks FORKS.md] [--locks LOCKS.md] [--json] FILE...

Lints Rust sources against the workspace's determinism and hot-path
invariants. In --workspace mode the fork registry defaults to FORKS.md and
the lock registry to LOCKS.md at the workspace root, and stale registry
rows are errors; with explicit FILE arguments every rule is active
(fixture context) and the registries are empty unless --forks/--locks are
given. --json emits one JSON object per diagnostic (fields: file, line,
col, rule, message, chain) instead of text.

Rules: nondeterministic-iteration, wall-clock, rng-fork-discipline,
hot-path-alloc, pure-model-effect, float-event-key, shard-boundary,
epoch-barrier, serve-loop-block, lock-order, fork-escape, unused-allow
(plus unknown-rule for bad allow directives). The marker rules propagate
through the workspace call graph; transitive findings print their chain.
Suppress one diagnostic with `// simlint: allow(<rule>, ...)` on the same
line or the line above.";

/// Minimal JSON string escaping (quotes, backslashes, control chars).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn to_json(diag: &Diagnostic) -> String {
    let chain: Vec<String> = diag
        .chain
        .iter()
        .map(|c| format!("\"{}\"", json_escape(c)))
        .collect();
    format!(
        "{{\"file\":\"{}\",\"line\":{},\"col\":{},\"rule\":\"{}\",\"message\":\"{}\",\"chain\":[{}]}}",
        json_escape(&diag.file),
        diag.line,
        diag.col,
        diag.rule,
        json_escape(&diag.message),
        chain.join(",")
    )
}

fn run() -> Result<usize, String> {
    let mut workspace = false;
    let mut json = false;
    let mut forks_path: Option<PathBuf> = None;
    let mut locks_path: Option<PathBuf> = None;
    let mut files: Vec<PathBuf> = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--workspace" => workspace = true,
            "--json" => json = true,
            "--forks" => {
                let value = args.next().ok_or("--forks needs a path")?;
                forks_path = Some(PathBuf::from(value));
            }
            "--locks" => {
                let value = args.next().ok_or("--locks needs a path")?;
                locks_path = Some(PathBuf::from(value));
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return Ok(0);
            }
            other if other.starts_with('-') => {
                return Err(format!("unknown flag {other}\n{USAGE}"));
            }
            file => files.push(PathBuf::from(file)),
        }
    }

    let load_forks = |path: &PathBuf| -> Result<ForkRegistry, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read fork registry {}: {e}", path.display()))?;
        Ok(ForkRegistry::parse(&path.to_string_lossy(), &text))
    };
    let load_locks = |path: &PathBuf| -> Result<LockRegistry, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read lock registry {}: {e}", path.display()))?;
        Ok(LockRegistry::parse(&path.to_string_lossy(), &text))
    };

    let diagnostics = if workspace {
        if !files.is_empty() {
            return Err(format!("--workspace takes no file arguments\n{USAGE}"));
        }
        let cwd = std::env::current_dir().map_err(|e| e.to_string())?;
        let root = find_workspace_root(&cwd)
            .ok_or("no workspace root (Cargo.toml with [workspace]) above cwd")?;
        let forks = load_forks(&forks_path.unwrap_or_else(|| root.join("FORKS.md")))?;
        let locks = load_locks(&locks_path.unwrap_or_else(|| root.join("LOCKS.md")))?;
        lint_workspace(&root, forks, locks).map_err(|e| e.to_string())?
    } else {
        if files.is_empty() {
            return Err(format!("no input files\n{USAGE}"));
        }
        let forks = match &forks_path {
            Some(path) => load_forks(path)?,
            None => ForkRegistry::default(),
        };
        let locks = match &locks_path {
            Some(path) => load_locks(path)?,
            None => LockRegistry::default(),
        };
        lint_paths(&files, forks, locks).map_err(|e| e.to_string())?
    };

    for diag in &diagnostics {
        if json {
            println!("{}", to_json(diag));
        } else {
            println!("{diag}");
        }
    }
    Ok(diagnostics.len())
}

fn main() -> ExitCode {
    match run() {
        Ok(0) => ExitCode::SUCCESS,
        Ok(n) => {
            eprintln!("simlint: {n} diagnostic{}", if n == 1 { "" } else { "s" });
            ExitCode::FAILURE
        }
        Err(message) => {
            eprintln!("simlint: {message}");
            ExitCode::from(2)
        }
    }
}
