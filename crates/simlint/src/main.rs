//! `simlint` CLI.
//!
//! ```text
//! simlint --workspace            lint the whole workspace (CI tier-1 mode)
//! simlint [--forks F] FILE...    lint specific files in fixture context
//! ```
//!
//! Exit codes: 0 clean, 1 diagnostics found, 2 usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

use simlint::{find_workspace_root, lint_paths, lint_workspace, ForkRegistry};

const USAGE: &str = "\
usage: simlint --workspace [--forks FORKS.md]
       simlint [--forks FORKS.md] FILE...

Lints Rust sources against the workspace's determinism and hot-path
invariants. In --workspace mode the fork registry defaults to FORKS.md at
the workspace root and stale registry rows are errors; with explicit FILE
arguments every rule is active (fixture context) and the registry is empty
unless --forks is given.

Rules: nondeterministic-iteration, wall-clock, rng-fork-discipline,
hot-path-alloc, pure-model-effect, float-event-key, shard-boundary,
epoch-barrier, serve-loop-block (plus unknown-rule for bad allow
directives). Suppress one diagnostic with `// simlint: allow(<rule>)` on
the same line or the line above.";

fn run() -> Result<usize, String> {
    let mut workspace = false;
    let mut forks_path: Option<PathBuf> = None;
    let mut files: Vec<PathBuf> = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--workspace" => workspace = true,
            "--forks" => {
                let value = args.next().ok_or("--forks needs a path")?;
                forks_path = Some(PathBuf::from(value));
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return Ok(0);
            }
            other if other.starts_with('-') => {
                return Err(format!("unknown flag {other}\n{USAGE}"));
            }
            file => files.push(PathBuf::from(file)),
        }
    }

    let load_registry = |path: &PathBuf| -> Result<ForkRegistry, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read fork registry {}: {e}", path.display()))?;
        Ok(ForkRegistry::parse(&path.to_string_lossy(), &text))
    };

    let diagnostics = if workspace {
        if !files.is_empty() {
            return Err(format!("--workspace takes no file arguments\n{USAGE}"));
        }
        let cwd = std::env::current_dir().map_err(|e| e.to_string())?;
        let root = find_workspace_root(&cwd)
            .ok_or("no workspace root (Cargo.toml with [workspace]) above cwd")?;
        let forks = forks_path.unwrap_or_else(|| root.join("FORKS.md"));
        let registry = load_registry(&forks)?;
        lint_workspace(&root, registry).map_err(|e| e.to_string())?
    } else {
        if files.is_empty() {
            return Err(format!("no input files\n{USAGE}"));
        }
        let registry = match &forks_path {
            Some(path) => load_registry(path)?,
            None => ForkRegistry::default(),
        };
        lint_paths(&files, registry).map_err(|e| e.to_string())?
    };

    for diag in &diagnostics {
        println!("{diag}");
    }
    Ok(diagnostics.len())
}

fn main() -> ExitCode {
    match run() {
        Ok(0) => ExitCode::SUCCESS,
        Ok(n) => {
            eprintln!("simlint: {n} diagnostic{}", if n == 1 { "" } else { "s" });
            ExitCode::FAILURE
        }
        Err(message) => {
            eprintln!("simlint: {message}");
            ExitCode::from(2)
        }
    }
}
