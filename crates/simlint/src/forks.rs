//! Parser for the checked-in RNG fork-stream registry (`FORKS.md`).
//!
//! The registry is a Markdown table; a row registers one literal fork
//! stream for one crate:
//!
//! ```markdown
//! | crate | stream | purpose |
//! |-------|--------|---------|
//! | core  | 4      | scenario link-fault draws |
//! ```
//!
//! Rows whose `stream` cell is not an integer literal (e.g. documented
//! ranges like `100 + host`) are descriptive only and are skipped by the
//! checker. Header and separator rows are recognized the same way.

use std::collections::BTreeMap;

/// One registered `(crate, stream)` pair.
#[derive(Debug, Clone)]
pub struct ForkEntry {
    /// 1-based line of the registering row in the registry file.
    pub line: u32,
    /// The purpose cell, for diagnostics.
    pub purpose: String,
}

/// The parsed registry: `(crate, stream) -> entry`.
#[derive(Debug, Default)]
pub struct ForkRegistry {
    /// Path the registry was loaded from, for diagnostics.
    pub path: String,
    entries: BTreeMap<(String, u64), ForkEntry>,
    /// Duplicate rows found while parsing: `(line, crate, stream)`.
    pub duplicates: Vec<(u32, String, u64)>,
}

impl ForkRegistry {
    /// Parses registry text. Never fails: malformed rows are simply not
    /// registry entries (the enforced invariant is "call sites must match
    /// rows", so a mangled row surfaces as an unregistered call site).
    pub fn parse(path: &str, text: &str) -> ForkRegistry {
        let mut registry = ForkRegistry {
            path: path.to_string(),
            ..ForkRegistry::default()
        };
        for (index, raw) in text.lines().enumerate() {
            let line = index as u32 + 1;
            let trimmed = raw.trim();
            if !trimmed.starts_with('|') {
                continue;
            }
            let cells: Vec<&str> = trimmed
                .trim_matches('|')
                .split('|')
                .map(str::trim)
                .collect();
            if cells.len() < 3 {
                continue;
            }
            let krate = cells[0];
            let stream_text: String = cells[1].chars().filter(|&c| c != '_').collect();
            let Ok(stream) = stream_text.parse::<u64>() else {
                continue; // header, separator, or documented range row
            };
            if krate.is_empty() {
                continue;
            }
            let key = (krate.to_string(), stream);
            match registry.entries.entry(key) {
                std::collections::btree_map::Entry::Occupied(e) => {
                    let (krate, stream) = e.key().clone();
                    registry.duplicates.push((line, krate, stream));
                }
                std::collections::btree_map::Entry::Vacant(e) => {
                    e.insert(ForkEntry {
                        line,
                        purpose: cells[2].to_string(),
                    });
                }
            }
        }
        registry
    }

    /// Looks up a registered stream.
    pub fn get(&self, krate: &str, stream: u64) -> Option<&ForkEntry> {
        self.entries.get(&(krate.to_string(), stream))
    }

    /// `true` when the registry has no entries at all (no `--forks` file
    /// was provided): every literal fork call site is then unregistered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// All registered `(crate, stream)` pairs with their entries.
    pub fn iter(&self) -> impl Iterator<Item = (&(String, u64), &ForkEntry)> {
        self.entries.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TABLE: &str = "\
# FORKS

| crate | stream | purpose |
|-------|--------|---------|
| core | 0 | placement |
| core | 10_000 | per-host DCF base |
| core | 100 + i | per-host mobility (range, not checked) |
| phy | 0 | something |
";

    #[test]
    fn parses_rows_and_skips_headers_and_ranges() {
        let reg = ForkRegistry::parse("FORKS.md", TABLE);
        assert!(reg.get("core", 0).is_some());
        assert!(reg.get("core", 10_000).is_some());
        assert!(reg.get("phy", 0).is_some());
        assert!(reg.get("core", 100).is_none(), "range rows are prose");
        assert_eq!(reg.iter().count(), 3);
        assert!(reg.duplicates.is_empty());
    }

    #[test]
    fn duplicate_rows_are_reported() {
        let reg = ForkRegistry::parse("FORKS.md", "| core | 1 | a |\n| core | 1 | b |\n");
        assert_eq!(reg.duplicates.len(), 1);
        assert_eq!(reg.duplicates[0].0, 2);
    }

    #[test]
    fn purpose_and_line_survive() {
        let reg = ForkRegistry::parse("FORKS.md", TABLE);
        let entry = reg.get("core", 0).unwrap();
        assert_eq!(entry.purpose, "placement");
        assert_eq!(entry.line, 5);
    }
}
