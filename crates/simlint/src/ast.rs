//! A recursive-descent item parser on top of the lexer.
//!
//! simlint v2 needs more than per-file token scans: transitive rules
//! (`hot-path-alloc` through a helper, `lock-order` across functions)
//! require knowing *which function* every token belongs to and *what
//! that function is called*. This module parses the comment-free token
//! stream into a flat list of function items — free functions, inherent
//! and trait-impl methods, and trait default methods — each carrying its
//! simlint markers, its enclosing `impl`/`trait` type, its module path,
//! and the token range of its body.
//!
//! The parser is total and loss-tolerant, like the lexer: anything it
//! does not recognize is skipped, so a file that does not compile still
//! yields every function it can find. Function bodies are *not* parsed
//! into expressions — rules scan body token ranges directly, and
//! call-site extraction lives in [`crate::graph`]. Nested `fn` items
//! inside a body are deliberately attributed to the enclosing function:
//! their effects execute (if at all) under the caller's annotations, and
//! treating them as part of the enclosing body errs on the side of the
//! invariant.

use crate::lexer::{Token, TokenKind};

/// One parsed function item.
#[derive(Debug, Clone)]
pub struct ParsedFn {
    /// The function's own name (`advance`, `new`, `r#loop`).
    pub name: String,
    /// Enclosing `impl` type or `trait` name, `None` for free functions.
    pub self_type: Option<String>,
    /// Inline-module path from the file root (`["tests"]`, `[]`).
    pub modules: Vec<String>,
    /// `#[cfg_attr(simlint, <marker>)]` markers on this fn, in order.
    pub markers: Vec<String>,
    /// Body range in code-token indices, braces excluded:
    /// `(first_body_token, index_of_closing_brace)`. `None` for
    /// bodyless trait methods.
    pub body: Option<(usize, usize)>,
    /// 1-based position of the fn's name token, for diagnostics.
    pub line: u32,
    /// 1-based column of the fn's name token.
    pub col: u32,
    /// Inside a `#[cfg(test)]` module or itself `#[cfg(test)]`/`#[test]`.
    pub in_cfg_test: bool,
    /// First parameter is a `self` receiver (`self`, `&self`, `&'a mut
    /// self`, `mut self`, `self: Box<Self>`).
    pub takes_self: bool,
    /// Number of parameters excluding the `self` receiver. Call-site
    /// resolution matches this against the argument count, which is the
    /// main defence against name collisions across the workspace.
    pub params: usize,
}

/// One named struct field: `owner.field` has head type `ty`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FieldDef {
    /// The struct's name.
    pub owner: String,
    /// The field's name.
    pub field: String,
    /// The first meaningful type name in the field's declaration.
    pub ty: String,
}

/// Wrapper types that are transparent for method-receiver purposes:
/// a call through `policy: Box<dyn Policy>` lands on `Policy`'s methods.
const TRANSPARENT_WRAPPERS: &[&str] = &[
    "Box", "Rc", "Arc", "RefCell", "Cell", "Mutex", "RwLock", "Option",
];

/// Scans a file for named-field struct declarations and records each
/// field's head type. The call graph uses this to resolve
/// `self.field.method(..)` receivers by type instead of by name alone.
/// Fields whose head type is a generic parameter or primitive yield no
/// entry and fall back to name-based resolution.
pub fn parse_fields(code: &[Token]) -> Vec<FieldDef> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < code.len() {
        if !is_ident(code, i, "struct") {
            i += 1;
            continue;
        }
        let Some(owner) = ident_at(code, i + 1).map(str::to_string) else {
            i += 1;
            continue;
        };
        // Past generics and any where clause to the body; `;` or `(`
        // means a unit or tuple struct with no named fields.
        let mut k = i + 2;
        while k < code.len() {
            if is_punct(code, k, "<") {
                k = skip_generics(code, k, code.len()) + 1;
                continue;
            }
            if is_punct(code, k, "{") || is_punct(code, k, ";") || is_punct(code, k, "(") {
                break;
            }
            k += 1;
        }
        if !is_punct(code, k, "{") {
            i = k + 1;
            continue;
        }
        let close = match_delim(code, k, "{", "}", code.len());
        let mut f = k + 1;
        while f < close {
            if is_punct(code, f, "#") && is_punct(code, f + 1, "[") {
                f = match_delim(code, f + 1, "[", "]", close) + 1;
                continue;
            }
            if is_ident(code, f, "pub") {
                f += 1;
                if is_punct(code, f, "(") {
                    f = match_delim(code, f, "(", ")", close) + 1;
                }
                continue;
            }
            let field = match ident_at(code, f) {
                Some(n) if is_punct(code, f + 1, ":") => n.to_string(),
                _ => {
                    f += 1;
                    continue;
                }
            };
            // Type tokens run to the comma at depth 0; the head is the
            // first non-wrapper capitalized name (`Box<dyn Policy>` →
            // `Policy`, `&'a [Frame]` → `Frame`).
            let mut t = f + 2;
            let mut depth = 0usize;
            let mut ty: Option<String> = None;
            while t < close {
                let tok = &code[t];
                if tok.kind == TokenKind::Punct {
                    match tok.text.as_str() {
                        "(" | "[" | "{" => depth += 1,
                        ")" | "]" | "}" => depth = depth.saturating_sub(1),
                        "," if depth == 0 => break,
                        _ => {}
                    }
                } else if ty.is_none()
                    && tok.kind == TokenKind::Ident
                    && tok.text.len() > 1
                    && tok.text.chars().next().is_some_and(char::is_uppercase)
                    && !TRANSPARENT_WRAPPERS.contains(&tok.text.as_str())
                {
                    ty = Some(tok.text.clone());
                }
                t += 1;
            }
            if let Some(ty) = ty {
                out.push(FieldDef {
                    owner: owner.clone(),
                    field,
                    ty,
                });
            }
            f = t + 1;
        }
        i = close + 1;
    }
    out
}

/// Attributes collected in front of the next item.
#[derive(Default, Clone)]
struct PendingAttrs {
    markers: Vec<String>,
    cfg_test: bool,
}

struct Parser<'a> {
    code: &'a [Token],
    fns: Vec<ParsedFn>,
}

/// Parses the comment-free token stream of one file into its functions.
pub fn parse_fns(code: &[Token]) -> Vec<ParsedFn> {
    let mut parser = Parser {
        code,
        fns: Vec::new(),
    };
    let end = code.len();
    parser.items(0, end, &mut Vec::new(), None, false);
    parser.fns
}

fn is_punct(code: &[Token], i: usize, text: &str) -> bool {
    code.get(i)
        .is_some_and(|t| t.kind == TokenKind::Punct && t.text == text)
}

fn is_ident(code: &[Token], i: usize, text: &str) -> bool {
    code.get(i)
        .is_some_and(|t| t.kind == TokenKind::Ident && t.text == text)
}

fn ident_at(code: &[Token], i: usize) -> Option<&str> {
    code.get(i)
        .filter(|t| t.kind == TokenKind::Ident)
        .map(|t| t.text.as_str())
}

/// Index of the matching closer for the opener at `open`, or `limit`
/// when unbalanced.
pub(crate) fn match_delim(
    code: &[Token],
    open: usize,
    open_c: &str,
    close_c: &str,
    limit: usize,
) -> usize {
    let mut depth = 0usize;
    let mut i = open;
    while i < limit.min(code.len()) {
        let tok = &code[i];
        if tok.kind == TokenKind::Punct {
            if tok.text == open_c {
                depth += 1;
            } else if tok.text == close_c {
                depth -= 1;
                if depth == 0 {
                    return i;
                }
            }
        }
        i += 1;
    }
    limit
}

/// Skips a balanced `<...>` generic list opening at `open`; `->` arrows
/// inside do not close it. Returns the index of the closing `>`.
fn skip_generics(code: &[Token], open: usize, limit: usize) -> usize {
    let mut angle = 0i32;
    let mut i = open;
    while i < limit.min(code.len()) {
        let t = &code[i];
        if t.kind == TokenKind::Punct {
            match t.text.as_str() {
                "<" => angle += 1,
                ">" => {
                    angle -= 1;
                    if angle == 0 {
                        return i;
                    }
                }
                "-" if is_punct(code, i + 1, ">") => i += 1,
                _ => {}
            }
        }
        i += 1;
    }
    limit
}

/// Counts the parameters in the signature parens `open..=close`
/// (indices of `(` and `)`), returning `(takes_self, non_self_params)`.
/// Commas inside nested delimiters or generic lists do not separate
/// parameters, and a trailing comma separates nothing.
fn count_params(code: &[Token], open: usize, close: usize) -> (bool, usize) {
    let mut j = open + 1;
    while j < close
        && (is_punct(code, j, "&")
            || code[j].kind == TokenKind::Lifetime
            || is_ident(code, j, "mut"))
    {
        j += 1;
    }
    let takes_self = j < close && is_ident(code, j, "self");
    if open + 1 >= close {
        return (false, 0);
    }
    let mut depth = 0usize;
    let mut commas = 0usize;
    let mut i = open + 1;
    while i < close {
        let t = &code[i];
        if t.kind == TokenKind::Punct {
            match t.text.as_str() {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => depth = depth.saturating_sub(1),
                "<" => {
                    i = skip_generics(code, i, close);
                }
                "," if depth == 0 && i + 1 < close => commas += 1,
                _ => {}
            }
        }
        i += 1;
    }
    let items = commas + 1;
    if takes_self {
        (true, items - 1)
    } else {
        (false, items)
    }
}

impl Parser<'_> {
    /// Parses the item sequence in `[i, end)`; `modules` and `self_type`
    /// describe the enclosing scope.
    fn items(
        &mut self,
        mut i: usize,
        end: usize,
        modules: &mut Vec<String>,
        self_type: Option<&str>,
        in_test: bool,
    ) {
        let mut pending = PendingAttrs::default();
        while i < end.min(self.code.len()) {
            // Attribute: harvest simlint markers and cfg(test), skip rest.
            if is_punct(self.code, i, "#") && is_punct(self.code, i + 1, "[") {
                let close = match_delim(self.code, i + 1, "[", "]", end);
                self.harvest_attr(i + 2, close, &mut pending);
                i = close + 1;
                continue;
            }
            let Some(word) = ident_at(self.code, i) else {
                // Stray punctuation between items never carries attrs
                // forward — except `!` right after `#` (inner attrs) and
                // visibility parens, which precede the item keyword.
                if !matches!(self.code[i].text.as_str(), "(" | ")" | "!") {
                    pending = PendingAttrs::default();
                }
                i += 1;
                continue;
            };
            match word {
                // Qualifiers that may sit between attrs and the keyword
                // (including `pub(crate)` / `pub(in path)` path words —
                // `const` items fall through to the catch-all via `=`).
                "pub" | "unsafe" | "const" | "async" | "extern" | "default" | "crate" | "in"
                | "super" | "self" => {
                    i += 1;
                }
                "fn" => {
                    i = self.item_fn(i, end, modules, self_type, in_test, &pending);
                    pending = PendingAttrs::default();
                }
                "impl" => {
                    i = self.item_impl(i, end, modules, in_test || pending.cfg_test);
                    pending = PendingAttrs::default();
                }
                "trait" => {
                    i = self.item_trait(i, end, modules, in_test || pending.cfg_test);
                    pending = PendingAttrs::default();
                }
                "mod" => {
                    i = self.item_mod(i, end, modules, self_type, in_test, &pending);
                    pending = PendingAttrs::default();
                }
                "macro_rules" => {
                    // `macro_rules! name { ... }` bodies are token soup
                    // (they may contain `fn` fragments); skip wholesale.
                    let mut j = i + 1;
                    while j < end && !is_punct(self.code, j, "{") {
                        j += 1;
                    }
                    i = match_delim(self.code, j, "{", "}", end) + 1;
                    pending = PendingAttrs::default();
                }
                _ => {
                    // Any other item (struct, enum, use, static, type,
                    // let in a const block, ...): skip one token; item
                    // bodies contain nothing that parses as a fn except
                    // via the keywords handled above.
                    i += 1;
                    pending = PendingAttrs::default();
                }
            }
        }
    }

    /// `# [ ... ]` contents in `[i, close)`.
    fn harvest_attr(&mut self, i: usize, close: usize, pending: &mut PendingAttrs) {
        let code = self.code;
        if is_ident(code, i, "cfg_attr")
            && is_punct(code, i + 1, "(")
            && is_ident(code, i + 2, "simlint")
            && is_punct(code, i + 3, ",")
        {
            if let Some(marker) = ident_at(code, i + 4) {
                pending.markers.push(marker.to_string());
            }
        }
        if is_ident(code, i, "cfg")
            && is_punct(code, i + 1, "(")
            && is_ident(code, i + 2, "test")
            && is_punct(code, i + 3, ")")
        {
            pending.cfg_test = true;
        }
        if is_ident(code, i, "test") && close == i + 1 {
            pending.cfg_test = true;
        }
    }

    /// Parses `fn name ... { body }` starting at the `fn` keyword;
    /// returns the index after the item.
    fn item_fn(
        &mut self,
        i: usize,
        end: usize,
        modules: &[String],
        self_type: Option<&str>,
        in_test: bool,
        pending: &PendingAttrs,
    ) -> usize {
        let Some(name) = ident_at(self.code, i + 1) else {
            // `fn(A) -> B` function-pointer type in an odd position.
            return i + 1;
        };
        let name_tok = &self.code[i + 1];
        // Parameter list: the first `(` after the name, generics skipped.
        let mut p = i + 2;
        if is_punct(self.code, p, "<") {
            p = skip_generics(self.code, p, end) + 1;
        }
        let (takes_self, params) = if is_punct(self.code, p, "(") {
            let close = match_delim(self.code, p, "(", ")", end);
            count_params(self.code, p, close)
        } else {
            (false, 0)
        };
        // Signature: scan to the body `{` (or `;` for trait methods) at
        // zero parenthesis depth, skipping generic lists so `where T:
        // Fn() -> Ordering` comparisons cannot misbalance the scan.
        let mut k = i + 2;
        let mut paren = 0i32;
        while k < end.min(self.code.len()) {
            let t = &self.code[k];
            if t.kind == TokenKind::Punct {
                match t.text.as_str() {
                    "(" | "[" => paren += 1,
                    ")" | "]" => paren -= 1,
                    "<" if paren == 0 => {
                        k = skip_generics(self.code, k, end);
                    }
                    "{" if paren == 0 => break,
                    ";" if paren == 0 => break,
                    _ => {}
                }
            }
            k += 1;
        }
        let body = if is_punct(self.code, k, "{") {
            let close = match_delim(self.code, k, "{", "}", end);
            Some((k + 1, close))
        } else {
            None
        };
        self.fns.push(ParsedFn {
            name: name.to_string(),
            self_type: self_type.map(str::to_string),
            modules: modules.to_vec(),
            markers: pending.markers.clone(),
            body,
            line: name_tok.line,
            col: name_tok.col,
            in_cfg_test: in_test || pending.cfg_test,
            takes_self,
            params,
        });
        match body {
            Some((_, close)) => close + 1,
            None => k + 1,
        }
    }

    /// `impl<G> Type { ... }` / `impl Trait for Type { ... }`.
    fn item_impl(
        &mut self,
        i: usize,
        end: usize,
        modules: &mut Vec<String>,
        in_test: bool,
    ) -> usize {
        // Find the body brace; remember the last ident seen and the last
        // ident after a `for`, skipping generic lists.
        let mut k = i + 1;
        let mut last_ident: Option<String> = None;
        let mut after_for: Option<String> = None;
        let mut saw_for = false;
        while k < end.min(self.code.len()) {
            let t = &self.code[k];
            match t.kind {
                TokenKind::Punct if t.text == "<" => {
                    k = skip_generics(self.code, k, end);
                }
                TokenKind::Punct if t.text == "{" => break,
                TokenKind::Punct if t.text == ";" => return k + 1,
                TokenKind::Ident if t.text == "for" => saw_for = true,
                TokenKind::Ident if t.text == "where" => {
                    // `impl<T> Foo<T> where ...` — type name already seen.
                }
                TokenKind::Ident => {
                    if saw_for {
                        // First path segment after `for` wins unless a
                        // later segment follows (`a::B` — keep last).
                        after_for = Some(t.text.clone());
                    } else {
                        last_ident = Some(t.text.clone());
                    }
                }
                _ => {}
            }
            k += 1;
        }
        if !is_punct(self.code, k, "{") {
            return k + 1;
        }
        let close = match_delim(self.code, k, "{", "}", end);
        let ty = after_for.or(last_ident);
        self.items(k + 1, close, modules, ty.as_deref(), in_test);
        close + 1
    }

    /// `trait Name { ... }` — default methods get the trait as their
    /// self type, so `.method()` call sites can resolve to them.
    fn item_trait(
        &mut self,
        i: usize,
        end: usize,
        modules: &mut Vec<String>,
        in_test: bool,
    ) -> usize {
        let name = ident_at(self.code, i + 1).map(str::to_string);
        let mut k = i + 2;
        while k < end.min(self.code.len()) {
            if is_punct(self.code, k, "<") {
                k = skip_generics(self.code, k, end) + 1;
                continue;
            }
            if is_punct(self.code, k, "{") {
                break;
            }
            if is_punct(self.code, k, ";") {
                return k + 1;
            }
            k += 1;
        }
        if !is_punct(self.code, k, "{") {
            return k + 1;
        }
        let close = match_delim(self.code, k, "{", "}", end);
        self.items(k + 1, close, modules, name.as_deref(), in_test);
        close + 1
    }

    /// `mod name { ... }` or `mod name;`.
    fn item_mod(
        &mut self,
        i: usize,
        end: usize,
        modules: &mut Vec<String>,
        self_type: Option<&str>,
        in_test: bool,
        pending: &PendingAttrs,
    ) -> usize {
        let Some(name) = ident_at(self.code, i + 1) else {
            return i + 1;
        };
        let name = name.to_string();
        if is_punct(self.code, i + 2, ";") {
            return i + 3;
        }
        if !is_punct(self.code, i + 2, "{") {
            return i + 2;
        }
        let close = match_delim(self.code, i + 2, "{", "}", end);
        modules.push(name);
        self.items(
            i + 3,
            close,
            modules,
            self_type,
            in_test || pending.cfg_test,
        );
        modules.pop();
        close + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse(src: &str) -> Vec<ParsedFn> {
        let code: Vec<Token> = lex(src)
            .into_iter()
            .filter(|t| !matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment))
            .collect();
        parse_fns(&code)
    }

    #[test]
    fn free_fns_and_methods() {
        let fns = parse(
            "fn free(a: u32) -> u32 { a }\n\
             struct W;\n\
             impl W {\n\
                 pub fn method(&self) {}\n\
             }\n\
             impl std::fmt::Display for W {\n\
                 fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result { Ok(()) }\n\
             }\n",
        );
        let names: Vec<(Option<&str>, &str)> = fns
            .iter()
            .map(|f| (f.self_type.as_deref(), f.name.as_str()))
            .collect();
        assert_eq!(
            names,
            vec![(None, "free"), (Some("W"), "method"), (Some("W"), "fmt")]
        );
        assert!(fns.iter().all(|f| f.body.is_some()));
    }

    #[test]
    fn markers_and_cfg_test_modules() {
        let fns = parse(
            "#[cfg_attr(simlint, hot_path)]\n\
             pub(crate) fn hot(&mut self) { work(); }\n\
             #[cfg(test)]\n\
             mod tests {\n\
                 #[test]\n\
                 fn probe() { hot(); }\n\
             }\n",
        );
        assert_eq!(fns[0].markers, vec!["hot_path".to_string()]);
        assert!(!fns[0].in_cfg_test);
        assert_eq!(fns[1].name, "probe");
        assert!(fns[1].in_cfg_test);
        assert_eq!(fns[1].modules, vec!["tests".to_string()]);
    }

    #[test]
    fn generic_signatures_find_their_bodies() {
        let fns = parse(
            "fn generic<T: Ord, F: Fn(T) -> bool>(xs: Vec<T>, f: F) -> Option<T>\n\
             where T: Clone {\n\
                 xs.into_iter().find(|x| f(x.clone()))\n\
             }\n\
             trait Policy {\n\
                 fn required(&self) -> bool;\n\
                 fn provided(&self) -> bool { !self.required() }\n\
             }\n",
        );
        assert_eq!(fns.len(), 3);
        assert!(fns[0].body.is_some(), "where-clause fn has a body");
        assert_eq!(fns[1].name, "required");
        assert!(fns[1].body.is_none(), "bodyless trait method");
        assert_eq!(fns[2].self_type.as_deref(), Some("Policy"));
        assert!(fns[2].body.is_some());
    }

    #[test]
    fn arity_counts_skip_self_generics_and_trailing_commas() {
        let fns = parse(
            "fn zero() {}\n\
             fn one(x: u32) -> u32 { x }\n\
             fn generic(m: HashMap<u32, Vec<(u8, u8)>>, f: impl Fn(u32, u32) -> u32) {}\n\
             fn trailing(a: u32, b: u32,) {}\n\
             impl W {\n\
                 fn only_self(&mut self) {}\n\
                 fn method<'a>(&'a self, jobs: &[Job], f: &dyn Fn(&Job)) {}\n\
                 fn boxed(self: Box<Self>, n: u32) {}\n\
                 fn assoc(n: u32) -> W { W }\n\
             }\n",
        );
        let got: Vec<(&str, bool, usize)> = fns
            .iter()
            .map(|f| (f.name.as_str(), f.takes_self, f.params))
            .collect();
        assert_eq!(
            got,
            vec![
                ("zero", false, 0),
                ("one", false, 1),
                ("generic", false, 2),
                ("trailing", false, 2),
                ("only_self", true, 0),
                ("method", true, 2),
                ("boxed", true, 1),
                ("assoc", false, 1),
            ]
        );
    }

    #[test]
    fn nested_fns_belong_to_the_outer_body() {
        let fns = parse(
            "fn outer() {\n\
                 fn inner() { vec![1] }\n\
                 inner();\n\
             }\n\
             fn after() {}\n",
        );
        let names: Vec<&str> = fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["outer", "after"], "inner stays in outer's body");
    }

    #[test]
    fn impl_generics_do_not_leak_the_type_name() {
        let fns = parse(
            "impl<'a, T: Ord> Wrapper<'a, T> {\n\
                 fn get(&self) -> &T { &self.0 }\n\
             }\n",
        );
        assert_eq!(fns[0].self_type.as_deref(), Some("Wrapper"));
    }

    #[test]
    fn struct_fields_record_head_types() {
        let code: Vec<Token> = lex("pub struct World<P> {\n\
                 pub scheme: SchemeSpec,\n\
                 policy: Box<dyn ReplyPolicy>,\n\
                 frames: &'static [Frame],\n\
                 counts: HashMap<u64, u32>,\n\
                 pool: P,\n\
                 n: u32,\n\
             }\n\
             struct Unit;\n\
             struct Pair(u32, u32);\n")
        .into_iter()
        .filter(|t| !matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment))
        .collect();
        let fields: Vec<(String, String, String)> = parse_fields(&code)
            .into_iter()
            .map(|f| (f.owner, f.field, f.ty))
            .collect();
        let w = "World".to_string();
        assert_eq!(
            fields,
            vec![
                (w.clone(), "scheme".into(), "SchemeSpec".into()),
                (w.clone(), "policy".into(), "ReplyPolicy".into()),
                (w.clone(), "frames".into(), "Frame".into()),
                (w.clone(), "counts".into(), "HashMap".into()),
            ],
            "generic-param and primitive fields yield no entry"
        );
    }

    #[test]
    fn macro_rules_bodies_are_skipped() {
        let fns = parse(
            "macro_rules! gen {\n\
                 ($n:ident) => { fn $n() {} };\n\
             }\n\
             fn real() {}\n",
        );
        let names: Vec<&str> = fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["real"]);
    }
}
