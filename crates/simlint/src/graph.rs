//! Workspace symbol table, call-site extraction, and the call graph.
//!
//! simlint v2's transitive rules all reduce to one question: *which
//! workspace functions can this function reach?* This module answers it.
//! Every parsed function from every linted file becomes a node; call
//! sites inside each body (`helper(..)`, `Type::method(..)`,
//! `recv.method(..)`) become edges, resolved by name against the
//! workspace symbol table. Resolution is deliberately name-based and
//! over-approximate — simlint has no type inference — with three
//! precision levers: a candidate's parameter count must match the call
//! site's argument count (so `pool.run(jobs, &f)` never resolves to a
//! zero-parameter `run` elsewhere), candidates defined in the *same
//! file* as the call shadow all others (local helpers win over
//! coincidental same-name fns elsewhere), and functions inside
//! `#[cfg(test)]` modules or test targets are never resolution
//! candidates (test scaffolding cannot capture production call edges). Calls that resolve to nothing —
//! `Vec::push`, `std::mem::swap`, trait methods on std types — simply
//! have no edge: the standard library is trusted, the workspace is
//! checked.

use crate::ast::{FieldDef, ParsedFn};
use crate::lexer::{Token, TokenKind};
use std::collections::{BTreeMap, VecDeque};

/// One file's contribution to the graph, borrowed from the lint driver.
pub struct FileView<'a> {
    /// Comment-free token stream.
    pub code: &'a [Token],
    /// Parsed functions, in source order.
    pub fns: &'a [ParsedFn],
    /// Named struct fields declared in this file.
    pub fields: &'a [FieldDef],
    /// Workspace-relative path label.
    pub file: &'a str,
    /// Crate directory name (`core`, `campaign`, `fixture`, ...).
    pub krate: &'a str,
    /// File stem (`world`, `medium`), used in display names.
    pub stem: &'a str,
    /// Whole file is a test/bench/example target.
    pub test_target: bool,
}

/// A function node: `(file index, fn index)` into the linted files.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct NodeId(pub usize, pub usize);

/// How a call site names its callee.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Callee {
    /// `recv.name(..)` — matched against every method named `name`.
    Method(String),
    /// `Type::name(..)` / `Self::name(..)` — matched per type.
    TypeMethod(String, String),
    /// `name(..)` / `module::name(..)` — matched against free fns.
    Free(String),
}

impl Callee {
    /// The bare function name, for display.
    pub fn name(&self) -> &str {
        match self {
            Callee::Method(n) | Callee::Free(n) => n,
            Callee::TypeMethod(_, n) => n,
        }
    }
}

/// A method call's receiver, when it is recognizably simple. Anything
/// more complex (a chained call, a local, a path) is `Unknown` and the
/// callee resolves by name alone.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Recv {
    /// Receiver expression not recognized.
    Unknown,
    /// `self.name(..)` — resolve against the caller's own type first.
    SelfDirect,
    /// `self.field.name(..)` — resolve against the field's declared
    /// type first.
    SelfField(String),
}

/// One raw call site before resolution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RawCall {
    /// What the call names.
    pub callee: Callee,
    /// Token index of the callee name.
    pub tok: usize,
    /// Number of arguments (receiver excluded).
    pub args: usize,
    /// Receiver shape, for method calls.
    pub recv: Recv,
}

/// One call site inside a function body.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// What the call names.
    pub callee: Callee,
    /// Token index of the callee name in the file's code stream.
    pub tok: usize,
    /// Number of arguments at the call site (receiver excluded).
    pub args: usize,
    /// Workspace functions the name resolves to (empty: external code).
    pub resolved: Vec<NodeId>,
}

/// The workspace call graph over every linted file.
pub struct Graph<'a> {
    /// The files, in lint order.
    pub files: &'a [FileView<'a>],
    /// Call sites per node, in source order.
    pub calls: BTreeMap<NodeId, Vec<CallSite>>,
}

/// Keywords and expression heads that look like `ident (` but are never
/// function calls.
const NOT_CALLS: &[&str] = &[
    "if", "else", "while", "loop", "for", "match", "return", "break", "continue", "move", "in",
    "as", "where", "unsafe", "let", "mut", "ref", "fn", "impl", "pub", "use", "crate", "super",
    "dyn", "await", "yield", "true", "false", "self", "Self",
];

fn is_punct(code: &[Token], i: usize, text: &str) -> bool {
    code.get(i)
        .is_some_and(|t| t.kind == TokenKind::Punct && t.text == text)
}

fn ident_at(code: &[Token], i: usize) -> Option<&str> {
    code.get(i)
        .filter(|t| t.kind == TokenKind::Ident)
        .map(|t| t.text.as_str())
}

/// Skips a `::<...>` turbofish starting at the first `:`; returns the
/// index after the closing `>`, or `i` when there is none.
fn skip_turbofish(code: &[Token], i: usize) -> usize {
    if !(is_punct(code, i, ":") && is_punct(code, i + 1, ":") && is_punct(code, i + 2, "<")) {
        return i;
    }
    let mut angle = 0i32;
    let mut k = i + 2;
    while k < code.len() {
        let t = &code[k];
        if t.kind == TokenKind::Punct {
            match t.text.as_str() {
                "<" => angle += 1,
                ">" => {
                    angle -= 1;
                    if angle == 0 {
                        return k + 1;
                    }
                }
                "-" if is_punct(code, k + 1, ">") => k += 1,
                ";" | "{" => return i, // not a turbofish after all
                _ => {}
            }
        }
        k += 1;
    }
    i
}

/// `|` opens a closure parameter list (rather than being bitwise-or)
/// when it follows an argument separator, a borrow, or `move`/`mut`.
fn closure_head(code: &[Token], i: usize) -> bool {
    if i == 0 {
        return false;
    }
    let prev = &code[i - 1];
    match prev.kind {
        TokenKind::Punct => matches!(prev.text.as_str(), "(" | "," | "&" | "="),
        TokenKind::Ident => prev.text == "move" || prev.text == "mut",
        _ => false,
    }
}

/// Skips a closure parameter list `|...|` opening at `open`; returns the
/// index after the closing `|`.
fn skip_closure_pipes(code: &[Token], open: usize) -> usize {
    let mut depth = 0usize;
    let mut i = open + 1;
    while i < code.len() {
        let t = &code[i];
        if t.kind == TokenKind::Punct {
            match t.text.as_str() {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => {
                    if depth == 0 {
                        return i; // unbalanced — not a closure after all
                    }
                    depth -= 1;
                }
                "|" if depth == 0 => return i + 1,
                _ => {}
            }
        }
        i += 1;
    }
    code.len()
}

/// Counts the comma-separated arguments of the call whose `(` sits at
/// `open`. Commas inside nested delimiters, turbofish lists, and closure
/// parameter pipes do not separate arguments; a trailing comma separates
/// nothing.
fn count_args(code: &[Token], open: usize) -> usize {
    let mut depth = 0usize;
    let mut commas = 0usize;
    let mut any = false;
    let mut i = open;
    while i < code.len() {
        let t = &code[i];
        if t.kind == TokenKind::Punct {
            match t.text.as_str() {
                "(" | "[" | "{" => {
                    depth += 1;
                    if depth > 1 {
                        any = true;
                    }
                    i += 1;
                    continue;
                }
                ")" | "]" | "}" => {
                    depth -= 1;
                    if depth == 0 {
                        return if any { commas + 1 } else { 0 };
                    }
                    any = true;
                    i += 1;
                    continue;
                }
                ":" if depth == 1 => {
                    let j = skip_turbofish(code, i);
                    if j > i {
                        any = true;
                        i = j;
                        continue;
                    }
                }
                "|" if depth == 1 && closure_head(code, i) => {
                    any = true;
                    i = skip_closure_pipes(code, i);
                    continue;
                }
                "," if depth == 1 => {
                    if !is_punct(code, i + 1, ")") {
                        commas += 1;
                    }
                    i += 1;
                    continue;
                }
                _ => {}
            }
        }
        if depth >= 1 {
            any = true;
        }
        i += 1;
    }
    if any {
        commas + 1
    } else {
        0
    }
}

/// Classifies the receiver tokens in front of a method call's `.` at
/// `dot` (the index of the `.` before the callee name).
fn classify_recv(code: &[Token], dot: usize) -> Recv {
    // `self.name(..)` — but not `x.self...`, which is not Rust anyway.
    if dot >= 1 && ident_at(code, dot - 1) == Some("self") {
        return Recv::SelfDirect;
    }
    // `self.field.name(..)` — exactly one field deep.
    if dot >= 3 && is_punct(code, dot - 2, ".") && ident_at(code, dot - 3) == Some("self") {
        if let Some(field) = ident_at(code, dot - 1) {
            return Recv::SelfField(field.to_string());
        }
    }
    Recv::Unknown
}

/// Extracts the call sites in `[start, end)` of one body.
pub fn extract_calls(code: &[Token], start: usize, end: usize) -> Vec<RawCall> {
    let mut out = Vec::new();
    for i in start..end.min(code.len()) {
        let Some(name) = ident_at(code, i) else {
            continue;
        };
        if NOT_CALLS.contains(&name) {
            continue;
        }
        // The name must be followed by `(`, possibly via a turbofish
        // (`collect::<Vec<_>>(..)`). A following `!` is a macro.
        if is_punct(code, i + 1, "!") {
            continue;
        }
        let after = skip_turbofish(code, i + 1);
        if !is_punct(code, after, "(") {
            continue;
        }
        // Nested `fn name(..)` declarations are not calls.
        if i > 0 && ident_at(code, i - 1) == Some("fn") {
            continue;
        }
        let mut recv = Recv::Unknown;
        let callee = if i > 0 && is_punct(code, i - 1, ".") {
            recv = classify_recv(code, i - 1);
            Callee::Method(name.to_string())
        } else if i >= 2 && is_punct(code, i - 1, ":") && is_punct(code, i - 2, ":") {
            match ident_at(code, i - 3) {
                // `Vec::<u8>::new(..)` — qualifier ends in `>`; treat as
                // external rather than guessing the type.
                None => continue,
                Some(q) if q.chars().next().is_some_and(char::is_uppercase) => {
                    Callee::TypeMethod(q.to_string(), name.to_string())
                }
                Some("self") if i >= 4 && is_punct(code, i - 4, ":") => {
                    // `crate::self::..` never happens; plain `self::f(..)`:
                    Callee::Free(name.to_string())
                }
                Some(_) => Callee::Free(name.to_string()),
            }
        } else {
            Callee::Free(name.to_string())
        };
        out.push(RawCall {
            callee,
            tok: i,
            args: count_args(code, after),
            recv,
        });
    }
    out
}

/// Candidate indexes over resolvable functions: methods by name, methods
/// by `(type, name)`, free functions by name, and struct field types by
/// `(owner, field)` for receiver-based narrowing.
struct SymbolTable {
    methods: BTreeMap<String, Vec<NodeId>>,
    type_methods: BTreeMap<(String, String), Vec<NodeId>>,
    free: BTreeMap<String, Vec<NodeId>>,
    fields: BTreeMap<(String, String), String>,
}

impl<'a> Graph<'a> {
    /// Builds the symbol table and resolves every call site.
    pub fn build(files: &'a [FileView<'a>]) -> Graph<'a> {
        let mut table = SymbolTable {
            methods: BTreeMap::new(),
            type_methods: BTreeMap::new(),
            free: BTreeMap::new(),
            fields: BTreeMap::new(),
        };
        for fv in files {
            for fd in fv.fields {
                table
                    .fields
                    .entry((fd.owner.clone(), fd.field.clone()))
                    .or_insert_with(|| fd.ty.clone());
            }
        }
        for (fi, fv) in files.iter().enumerate() {
            for (ni, f) in fv.fns.iter().enumerate() {
                // Test scaffolding and bodyless trait signatures are
                // never call targets.
                if fv.test_target || f.in_cfg_test || f.body.is_none() {
                    continue;
                }
                let id = NodeId(fi, ni);
                match &f.self_type {
                    Some(ty) => {
                        table.methods.entry(f.name.clone()).or_default().push(id);
                        table
                            .type_methods
                            .entry((ty.clone(), f.name.clone()))
                            .or_default()
                            .push(id);
                    }
                    None => table.free.entry(f.name.clone()).or_default().push(id),
                }
            }
        }
        let mut calls: BTreeMap<NodeId, Vec<CallSite>> = BTreeMap::new();
        for (fi, fv) in files.iter().enumerate() {
            for (ni, f) in fv.fns.iter().enumerate() {
                let Some((start, end)) = f.body else {
                    continue;
                };
                let id = NodeId(fi, ni);
                let sites = extract_calls(fv.code, start, end)
                    .into_iter()
                    .map(|raw| {
                        let resolved = resolve(&table, files, fi, f, &raw);
                        CallSite {
                            callee: raw.callee,
                            tok: raw.tok,
                            args: raw.args,
                            resolved,
                        }
                    })
                    .collect();
                calls.insert(id, sites);
            }
        }
        Graph { files, calls }
    }

    /// The parsed function behind a node.
    pub fn node(&self, id: NodeId) -> &ParsedFn {
        &self.files[id.0].fns[id.1]
    }

    /// `crate::stem::name` (or `stem::name` outside `crates/`), the form
    /// propagation chains print.
    pub fn display(&self, id: NodeId) -> String {
        let fv = &self.files[id.0];
        let f = &fv.fns[id.1];
        if fv.krate == "fixture" || fv.krate == "main" {
            format!("{}::{}", fv.stem, f.name)
        } else {
            format!("{}::{}::{}", fv.krate, fv.stem, f.name)
        }
    }

    /// Deduplicated outgoing edges of a node, in call order.
    pub fn edges(&self, id: NodeId) -> Vec<NodeId> {
        let mut seen = Vec::new();
        if let Some(sites) = self.calls.get(&id) {
            for site in sites {
                for &to in &site.resolved {
                    if to != id && !seen.contains(&to) {
                        seen.push(to);
                    }
                }
            }
        }
        seen
    }

    /// Every node carrying `marker` directly (outside test code).
    pub fn roots(&self, marker: &str) -> Vec<NodeId> {
        let mut roots = Vec::new();
        for (fi, fv) in self.files.iter().enumerate() {
            if fv.test_target {
                continue;
            }
            for (ni, f) in fv.fns.iter().enumerate() {
                if !f.in_cfg_test && f.markers.iter().any(|m| m == marker) {
                    roots.push(NodeId(fi, ni));
                }
            }
        }
        roots
    }

    /// Breadth-first reach from `roots`, returning each reached node at
    /// call-depth ≥ 1 with its shortest chain `[root, .., node]`.
    /// Nodes that carry `marker` themselves are skipped (they are
    /// scanned directly), as are test nodes and bodyless signatures.
    pub fn propagate(&self, marker: &str, roots: &[NodeId]) -> Vec<(NodeId, Vec<NodeId>)> {
        let mut parent: BTreeMap<NodeId, NodeId> = BTreeMap::new();
        let mut queue: VecDeque<NodeId> = VecDeque::new();
        for &r in roots {
            // A root is its own parent; the map doubles as the visited set.
            parent.entry(r).or_insert(r);
            queue.push_back(r);
        }
        let mut reached = Vec::new();
        while let Some(at) = queue.pop_front() {
            for to in self.edges(at) {
                if parent.contains_key(&to) {
                    continue;
                }
                let fv = &self.files[to.0];
                let f = &fv.fns[to.1];
                if fv.test_target || f.in_cfg_test || f.body.is_none() {
                    continue;
                }
                parent.insert(to, at);
                queue.push_back(to);
                if !f.markers.iter().any(|m| m == marker) {
                    let mut chain = vec![to];
                    let mut cur = to;
                    while parent[&cur] != cur {
                        cur = parent[&cur];
                        chain.push(cur);
                    }
                    chain.reverse();
                    reached.push((to, chain));
                }
            }
        }
        reached
    }
}

/// Resolves one callee reference against the symbol table, in
/// decreasing order of confidence: a recognized `self`/`self.field`
/// receiver narrows a method call to its type's own methods; candidates
/// whose arity does not match the call site are dropped — a
/// `recv.run(jobs, &f)` call cannot mean a zero-parameter `run` method
/// elsewhere in the workspace — and same-file candidates shadow the
/// rest. An empty result means external code.
fn resolve(
    table: &SymbolTable,
    files: &[FileView<'_>],
    caller_file: usize,
    caller: &ParsedFn,
    raw: &RawCall,
) -> Vec<NodeId> {
    let (callee, args) = (&raw.callee, raw.args);
    if let Callee::Method(name) = callee {
        let recv_ty: Option<&str> = match &raw.recv {
            Recv::SelfDirect => caller.self_type.as_deref(),
            Recv::SelfField(field) => caller.self_type.as_deref().and_then(|s| {
                table
                    .fields
                    .get(&(s.to_string(), field.clone()))
                    .map(String::as_str)
            }),
            Recv::Unknown => None,
        };
        if let Some(ty) = recv_ty {
            let narrowed: Vec<NodeId> = table
                .type_methods
                .get(&(ty.to_string(), name.clone()))
                .map_or(&[][..], Vec::as_slice)
                .iter()
                .filter(|id| {
                    let f = &files[id.0].fns[id.1];
                    f.takes_self && f.params == args
                })
                .copied()
                .collect();
            if !narrowed.is_empty() {
                return narrowed;
            }
            // No match on the receiver's own type: fall through to
            // name-based resolution, which still finds trait-default
            // methods and Deref targets.
        }
    }
    let candidates: &[NodeId] = match callee {
        Callee::Method(name) => table.methods.get(name).map_or(&[], Vec::as_slice),
        Callee::Free(name) => table.free.get(name).map_or(&[], Vec::as_slice),
        Callee::TypeMethod(ty, name) => {
            let ty = if ty == "Self" {
                match &caller.self_type {
                    Some(t) => t.as_str(),
                    None => return Vec::new(),
                }
            } else {
                ty.as_str()
            };
            table
                .type_methods
                .get(&(ty.to_string(), name.clone()))
                .map_or(&[], Vec::as_slice)
        }
    };
    let fits = |id: &&NodeId| {
        let f = &files[id.0].fns[id.1];
        match callee {
            // `.name(a, b)` — the receiver is the `self` parameter.
            Callee::Method(_) => f.takes_self && f.params == args,
            Callee::Free(_) => f.params == args,
            // `Type::name(..)` reaches associated fns directly and
            // methods in UFCS form (receiver as first argument).
            Callee::TypeMethod(..) => f.params == args || (f.takes_self && f.params + 1 == args),
        }
    };
    let fitting: Vec<NodeId> = candidates.iter().filter(fits).copied().collect();
    let same_file: Vec<NodeId> = fitting
        .iter()
        .copied()
        .filter(|id| id.0 == caller_file)
        .collect();
    if !same_file.is_empty() {
        return same_file;
    }
    fitting
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::parse_fns;
    use crate::lexer::lex;

    fn view(src: &str) -> (Vec<Token>, Vec<ParsedFn>) {
        let code: Vec<Token> = lex(src)
            .into_iter()
            .filter(|t| !matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment))
            .collect();
        let fns = parse_fns(&code);
        (code, fns)
    }

    #[test]
    fn extracts_method_path_and_free_calls() {
        let (code, fns) = view(
            "fn f(&mut self) {\n\
                 helper(1);\n\
                 self.medium.deliver(pkt);\n\
                 SimTime::from_nanos(5);\n\
                 Self::reset(self);\n\
                 let v: Vec<u32> = xs.iter().collect::<Vec<u32>>();\n\
                 if x { vec![1]; }\n\
             }\n",
        );
        let (start, end) = fns[0].body.unwrap();
        let calls: Vec<(Callee, usize)> = extract_calls(&code, start, end)
            .into_iter()
            .map(|r| (r.callee, r.args))
            .collect();
        assert_eq!(
            calls,
            vec![
                (Callee::Free("helper".into()), 1),
                (Callee::Method("deliver".into()), 1),
                (Callee::TypeMethod("SimTime".into(), "from_nanos".into()), 1),
                (Callee::TypeMethod("Self".into(), "reset".into()), 1),
                (Callee::Method("iter".into()), 0),
                (Callee::Method("collect".into()), 0),
            ],
            "keywords and macros are not calls"
        );
    }

    #[test]
    fn argument_counts_ignore_closure_and_nested_commas() {
        let (code, fns) = view(
            "fn f() {\n\
                 pool.run(jobs, &|j| { touch(j, 1); });\n\
                 g(point(1, 2), xs.collect::<HashMap<u32, u32>>());\n\
                 h(a, b,);\n\
                 sort_by(|a, b| a.cmp(b));\n\
             }\n",
        );
        let (start, end) = fns[0].body.unwrap();
        let args: Vec<(String, usize)> = extract_calls(&code, start, end)
            .into_iter()
            .map(|r| (r.callee.name().to_string(), r.args))
            .collect();
        assert_eq!(
            args,
            vec![
                ("run".to_string(), 2),
                ("touch".to_string(), 2),
                ("g".to_string(), 2),
                ("point".to_string(), 2),
                ("collect".to_string(), 0),
                ("h".to_string(), 2),
                ("sort_by".to_string(), 1),
                ("cmp".to_string(), 1),
            ]
        );
    }

    #[test]
    fn self_field_receivers_resolve_by_declared_type() {
        // `self.scheme.build()` must reach SchemeSpec::build only, not
        // the same-arity same-file SimConfigBuilder::build that plain
        // name-based resolution (even with shadowing) would include.
        let (code_a, fns_a) = view(
            "struct Models { scheme: SchemeSpec }\n\
             impl Models {\n\
                 fn heard(&mut self) { let p = self.scheme.build(); }\n\
             }\n\
             impl SchemeSpec {\n\
                 fn build(&self) -> u32 { 1 }\n\
             }\n\
             impl SimConfigBuilder {\n\
                 fn build(&self) -> u32 { 2 }\n\
             }\n",
        );
        let fields_a = crate::ast::parse_fields(&code_a);
        let files = vec![FileView {
            code: &code_a,
            fns: &fns_a,
            fields: &fields_a,
            file: "a.rs",
            krate: "fixture",
            stem: "a",
            test_target: false,
        }];
        let graph = Graph::build(&files);
        // heard is fns_a[0]; SchemeSpec::build is fns_a[1].
        assert_eq!(graph.edges(NodeId(0, 0)), vec![NodeId(0, 1)]);
    }

    #[test]
    fn arity_mismatch_beats_same_file_shadowing() {
        // `self.pool.run(jobs, &f)` must resolve to the two-parameter
        // `run` in another file, not the zero-parameter `run` method
        // that happens to live in the caller's own file.
        let (code_a, fns_a) = view(
            "impl World {\n\
                 fn advance(&mut self, jobs: u32, f: u32) { self.pool.run(jobs, &f); }\n\
                 fn run(self) {}\n\
             }\n",
        );
        let (code_b, fns_b) = view(
            "impl Pool {\n\
                 fn run(&self, jobs: u32, f: &u32) {}\n\
             }\n",
        );
        let files = vec![
            FileView {
                code: &code_a,
                fns: &fns_a,
                fields: &[],
                file: "a.rs",
                krate: "fixture",
                stem: "a",
                test_target: false,
            },
            FileView {
                code: &code_b,
                fns: &fns_b,
                fields: &[],
                file: "b.rs",
                krate: "fixture",
                stem: "b",
                test_target: false,
            },
        ];
        let graph = Graph::build(&files);
        assert_eq!(graph.edges(NodeId(0, 0)), vec![NodeId(1, 0)]);
    }

    #[test]
    fn same_file_candidates_shadow_other_files() {
        let (code_a, fns_a) = view("fn go() { lock(); }\nfn lock() {}\n");
        let (code_b, fns_b) = view("fn lock() {}\n");
        let files = vec![
            FileView {
                code: &code_a,
                fns: &fns_a,
                fields: &[],
                file: "a.rs",
                krate: "fixture",
                stem: "a",
                test_target: false,
            },
            FileView {
                code: &code_b,
                fns: &fns_b,
                fields: &[],
                file: "b.rs",
                krate: "fixture",
                stem: "b",
                test_target: false,
            },
        ];
        let graph = Graph::build(&files);
        assert_eq!(graph.edges(NodeId(0, 0)), vec![NodeId(0, 1)]);
    }

    #[test]
    fn propagation_reaches_transitive_callees_with_chains() {
        let (code, fns) = view(
            "#[cfg_attr(simlint, hot_path)]\n\
             fn root() { mid(); }\n\
             fn mid() { leaf(); }\n\
             fn leaf() {}\n",
        );
        let files = vec![FileView {
            code: &code,
            fns: &fns,
            fields: &[],
            file: "x.rs",
            krate: "fixture",
            stem: "x",
            test_target: false,
        }];
        let graph = Graph::build(&files);
        let roots = graph.roots("hot_path");
        assert_eq!(roots, vec![NodeId(0, 0)]);
        let reached = graph.propagate("hot_path", &roots);
        let chains: Vec<(String, Vec<String>)> = reached
            .iter()
            .map(|(id, chain)| {
                (
                    graph.display(*id),
                    chain.iter().map(|c| graph.display(*c)).collect(),
                )
            })
            .collect();
        assert_eq!(
            chains,
            vec![
                (
                    "x::mid".to_string(),
                    vec!["x::root".to_string(), "x::mid".to_string()]
                ),
                (
                    "x::leaf".to_string(),
                    vec![
                        "x::root".to_string(),
                        "x::mid".to_string(),
                        "x::leaf".to_string()
                    ]
                ),
            ]
        );
    }

    #[test]
    fn test_fns_are_neither_candidates_nor_reached() {
        let (code, fns) = view(
            "#[cfg_attr(simlint, hot_path)]\n\
             fn root() { probe(); }\n\
             #[cfg(test)]\n\
             mod tests {\n\
                 pub fn probe() { vec![1]; }\n\
             }\n",
        );
        let files = vec![FileView {
            code: &code,
            fns: &fns,
            fields: &[],
            file: "x.rs",
            krate: "fixture",
            stem: "x",
            test_target: false,
        }];
        let graph = Graph::build(&files);
        assert!(graph
            .propagate("hot_path", &graph.roots("hot_path"))
            .is_empty());
    }
}
