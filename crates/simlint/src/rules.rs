//! The project-invariant rules, the allow-directive machinery, and the
//! two-phase lint driver.
//!
//! Every rule walks the comment-free code token stream from
//! [`crate::lexer`]; comments are consulted only for
//! `// simlint: allow(<rule>, ...)` directives. Diagnostics carry
//! 1-based `line:col` spans and a stable rule id, and deny by default:
//! any diagnostic fails the build.
//!
//! v2 runs in two phases. [`Linter::lint_file`] lexes, parses
//! ([`crate::ast`]), and applies the *local* rules, storing the file's
//! facts; [`Linter::finish`] then builds the workspace call graph
//! ([`crate::graph`]) and runs the *transitive* analyses — annotation
//! propagation (`hot_path`, `pure_model`, `shard_merge`, `epoch_shard`
//! findings in any function reachable from an annotated one, with the
//! propagation chain printed), [`crate::locks`] lock ordering, and
//! `fork-escape` — before applying allow directives and flagging the
//! unused ones. `serve_loop` is deliberately *not* propagated: its
//! bounded-growth check keys off identifiers visible in the annotated
//! fn's own body, and the session loops already confine peer input
//! handling to the annotated fns. Likewise the RNG-draw half of the
//! `epoch-barrier` rule stays direct-only: per-node streams drawn
//! inside the node models a drain calls into are the sanctioned
//! mechanism, so propagation checks callees only for the effects that
//! are global no matter the receiver (`event_seq`, `Medium` mutation).

use crate::ast::{parse_fields, parse_fns, FieldDef, ParsedFn};
use crate::forks::ForkRegistry;
use crate::graph::{Callee, FileView, Graph};
use crate::lexer::{lex, Token, TokenKind};
use crate::locks::{self, LockRegistry};
use std::collections::BTreeMap;

/// `HashMap`/`HashSet` with the default `RandomState`: iteration order is
/// randomized per process and can leak into event ordering or output.
pub const RULE_NONDET_ITER: &str = "nondeterministic-iteration";
/// `std::time::Instant` / `SystemTime` reads: wall-clock time must never
/// influence simulation state.
pub const RULE_WALL_CLOCK: &str = "wall-clock";
/// Literal `fork(N)` streams must be registered in `FORKS.md` and unique
/// per crate, so new subsystems cannot collide with existing RNG streams.
pub const RULE_FORK: &str = "rng-fork-discipline";
/// Functions annotated `#[cfg_attr(simlint, hot_path)]` — and every
/// workspace function reachable from one — must not contain allocating
/// constructs.
pub const RULE_HOT_PATH: &str = "hot-path-alloc";
/// Functions annotated `#[cfg_attr(simlint, pure_model)]` — and every
/// workspace function reachable from one — must not draw RNG, touch the
/// event queue, or mutate the `Medium`: every effect belongs to the
/// dispatcher, so recorded traces replay through the pure models alone.
pub const RULE_PURE_MODEL: &str = "pure-model-effect";
/// Types deriving `Ord`/`PartialOrd` (candidate event-queue keys) must
/// not contain `f32`/`f64` fields.
pub const RULE_FLOAT_KEY: &str = "float-event-key";
/// Functions annotated `#[cfg_attr(simlint, shard_merge)]` route or merge
/// events across shard queues; any `HashMap`/`HashSet` there — or in a
/// function reachable from there — risks iteration order leaking into
/// the global event order, which must stay a pure function of
/// `(time, seq)`.
pub const RULE_SHARD_BOUNDARY: &str = "shard-boundary";
/// Functions annotated `#[cfg_attr(simlint, epoch_shard)]` run
/// concurrently, one per shard, inside a parallel epoch. They must not
/// mutate the shared `Medium`, draw from an RNG receiver (the global
/// stream is not shard-safe; per-node streams live inside the node
/// models), or touch the global `event_seq` counter — every global
/// effect belongs after the epoch barrier. The `Medium`/`event_seq`
/// half also applies transitively to every function a drain can reach.
pub const RULE_EPOCH_BARRIER: &str = "epoch-barrier";
/// Mutex/RwLock acquisition order: derived acquired-while-held edges
/// must be acyclic and respect the ranks declared in `LOCKS.md`.
pub const RULE_LOCK_ORDER: &str = "lock-order";
/// A `let`-bound literal `fork(N)` RNG handle passed to a call that
/// resolves to no workspace function: the stream leaves analyzed code
/// and its draw discipline can no longer be checked.
pub const RULE_FORK_ESCAPE: &str = "fork-escape";
/// A `simlint: allow(...)` directive naming a rule that does not exist.
pub const RULE_UNKNOWN: &str = "unknown-rule";
/// An allow directive that suppressed nothing: stale allows hide future
/// regressions and must be deleted (this rule cannot itself be allowed).
pub const RULE_UNUSED_ALLOW: &str = "unused-allow";
/// Functions annotated `#[cfg_attr(simlint, serve_loop)]` sit on the
/// campaign server's session path, where the peer controls the input:
/// no whole-stream slurps (`read_to_end`/`read_to_string`), no buffer
/// growth without a visible bound (`MAX_*`/capacity mention in the fn),
/// and no wall-clock reads — session behavior must be a function of the
/// protocol bytes alone.
pub const RULE_SERVE_LOOP: &str = "serve-loop-block";

/// All rule ids, in diagnostic-documentation order.
pub const ALL_RULES: &[&str] = &[
    RULE_NONDET_ITER,
    RULE_WALL_CLOCK,
    RULE_FORK,
    RULE_HOT_PATH,
    RULE_PURE_MODEL,
    RULE_FLOAT_KEY,
    RULE_SHARD_BOUNDARY,
    RULE_EPOCH_BARRIER,
    RULE_SERVE_LOOP,
    RULE_LOCK_ORDER,
    RULE_FORK_ESCAPE,
    RULE_UNUSED_ALLOW,
    RULE_UNKNOWN,
];

/// Markers whose rules propagate through the call graph.
const PROPAGATED_MARKERS: &[&str] = &["hot_path", "pure_model", "shard_merge", "epoch_shard"];

/// Crates whose state feeds event scheduling or report output; the
/// iteration and float-key rules apply only here.
pub const SIM_CRATES: &[&str] = &["sim-engine", "phy", "mac", "net", "core", "scenario"];

/// Crates that legitimately read the wall clock (benchmarks and the test
/// harness measure real elapsed time).
pub const WALL_CLOCK_EXEMPT: &[&str] = &["bench", "testkit"];

/// One finding, printable as `file:line:col: error[rule]: message`, with
/// the propagation chain appended when the finding was reached through
/// the call graph: `... (via core::world::advance → phy::medium::deliver)`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Diagnostic {
    /// Path as given to the linter (workspace-relative in `--workspace`).
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column (characters).
    pub col: u32,
    /// Stable rule id from [`ALL_RULES`].
    pub rule: &'static str,
    /// Human-readable explanation.
    pub message: String,
    /// Call path from the annotated root to the function containing the
    /// finding (`crate::file::fn` displays); empty for direct findings.
    pub chain: Vec<String>,
}

impl Diagnostic {
    fn new(file: &str, tok: &Token, rule: &'static str, message: String) -> Diagnostic {
        Diagnostic {
            file: file.to_string(),
            line: tok.line,
            col: tok.col,
            rule,
            message,
            chain: Vec::new(),
        }
    }
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}:{}: error[{}]: {}",
            self.file, self.line, self.col, self.rule, self.message
        )?;
        if !self.chain.is_empty() {
            write!(f, " (via {})", self.chain.join(" → "))?;
        }
        Ok(())
    }
}

/// Which rule set applies to a file.
#[derive(Debug, Clone)]
pub struct CrateContext {
    /// Crate directory name (`core`, `phy`, ...), `main` for the root
    /// crate, `fixture` for explicitly listed files.
    pub name: String,
    /// Subject to [`RULE_NONDET_ITER`] and [`RULE_FLOAT_KEY`].
    pub sim: bool,
    /// Exempt from [`RULE_WALL_CLOCK`].
    pub wall_clock_exempt: bool,
    /// Integration test / bench / example target: fork and float-key
    /// discipline does not apply (tests probe arbitrary streams).
    pub test_target: bool,
}

impl CrateContext {
    /// Context for a workspace-relative path.
    pub fn for_workspace_path(rel: &str) -> CrateContext {
        let parts: Vec<&str> = rel.split('/').collect();
        let (name, rest) = if parts.len() >= 3 && parts[0] == "crates" {
            (parts[1].to_string(), parts[2])
        } else {
            ("main".to_string(), parts.first().copied().unwrap_or(""))
        };
        let test_target = matches!(rest, "tests" | "benches" | "examples");
        CrateContext {
            sim: SIM_CRATES.contains(&name.as_str()),
            wall_clock_exempt: WALL_CLOCK_EXEMPT.contains(&name.as_str()),
            name,
            test_target,
        }
    }

    /// Context for an explicitly listed file (fixtures): every rule is
    /// active so the corpus can exercise the full rule set.
    pub fn fixture() -> CrateContext {
        CrateContext {
            name: "fixture".to_string(),
            sim: true,
            wall_clock_exempt: false,
            test_target: false,
        }
    }
}

/// An `allow` budget from one directive comment.
struct Allow {
    rule: &'static str,
    line: u32,
    col: u32,
    used: bool,
}

/// Everything [`Linter::finish`] needs from one linted file.
struct FileFacts {
    label: String,
    ctx: CrateContext,
    stem: String,
    code: Vec<Token>,
    fns: Vec<ParsedFn>,
    fields: Vec<FieldDef>,
    allows: Vec<Allow>,
    /// Local-rule diagnostics, suppression not yet applied.
    raw: Vec<Diagnostic>,
}

/// Cross-file lint state: the registries, every file's parsed facts, and
/// — after [`Linter::finish`] — the final diagnostics.
pub struct Linter {
    forks: ForkRegistry,
    locks: LockRegistry,
    /// `(crate, stream) -> (file, line)` of the first literal call site.
    fork_sites: BTreeMap<(String, u64), (String, u32)>,
    files: Vec<FileFacts>,
    /// Unknown-rule directives; never suppressible.
    unknown: Vec<Diagnostic>,
    /// Findings across all files, final after [`Linter::finish`].
    pub diagnostics: Vec<Diagnostic>,
}

impl Linter {
    /// A linter enforcing against the given fork and lock registries.
    pub fn new(forks: ForkRegistry, locks: LockRegistry) -> Linter {
        Linter {
            forks,
            locks,
            fork_sites: BTreeMap::new(),
            files: Vec::new(),
            unknown: Vec::new(),
            diagnostics: Vec::new(),
        }
    }

    /// Phase one: lints one file's local rules and stores its facts for
    /// the cross-file phase.
    pub fn lint_file(&mut self, file: &str, source: &str, ctx: &CrateContext) {
        let tokens = lex(source);
        let (allows, unknown_diags) = parse_directives(file, &tokens);
        self.unknown.extend(unknown_diags);
        let code: Vec<Token> = tokens
            .into_iter()
            .filter(|t| !matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment))
            .collect();
        let fns = parse_fns(&code);
        let fields = parse_fields(&code);
        let test_ranges = cfg_test_ranges(&code);
        let in_test = |i: usize| test_ranges.iter().any(|&(lo, hi)| lo <= i && i <= hi);

        let mut raw: Vec<Diagnostic> = Vec::new();
        if ctx.sim {
            rule_nondet_iteration(file, &code, &mut raw);
        }
        if !ctx.wall_clock_exempt {
            rule_wall_clock(file, &code, &mut raw);
        }
        if !ctx.test_target {
            self.rule_fork_discipline(file, &code, ctx, &in_test, &mut raw);
        }
        for f in &fns {
            let Some((start, end)) = f.body else {
                continue;
            };
            for marker in &f.markers {
                match marker.as_str() {
                    "hot_path" => {
                        for (i, construct) in alloc_findings(&code, start, end) {
                            raw.push(Diagnostic::new(
                                file,
                                &code[i],
                                RULE_HOT_PATH,
                                format!(
                                    "allocating construct `{construct}` inside hot-path fn \
                                     `{}` (banned: {})",
                                    f.name,
                                    ALLOC_CONSTRUCTS.join(", ")
                                ),
                            ));
                        }
                    }
                    "pure_model" => {
                        for (i, what) in effect_findings(&code, start, end) {
                            raw.push(Diagnostic::new(
                                file,
                                &code[i],
                                RULE_PURE_MODEL,
                                format!(
                                    "`.{}(...)` is {what} inside pure-model fn `{}`; \
                                     every effect must flow through the dispatcher so recorded \
                                     traces replay through the pure models alone",
                                    code[i].text, f.name
                                ),
                            ));
                        }
                    }
                    "shard_merge" => {
                        for i in shard_findings(&code, start, end) {
                            raw.push(Diagnostic::new(
                                file,
                                &code[i],
                                RULE_SHARD_BOUNDARY,
                                format!(
                                    "`{}` inside shard-merge fn `{}`: cross-shard \
                                     routing and merging must never depend on hash-map \
                                     iteration order — the merged event order is a pure \
                                     function of (time, seq)",
                                    code[i].text, f.name
                                ),
                            ));
                        }
                    }
                    "epoch_shard" => {
                        for (i, what) in epoch_findings(&code, start, end, true) {
                            raw.push(epoch_direct_diag(file, &code, i, what, &f.name));
                        }
                    }
                    "serve_loop" => {
                        rule_serve_loop_block(file, &code, start, end, &f.name, &mut raw);
                    }
                    _ => {}
                }
            }
        }
        if ctx.sim && !ctx.test_target {
            rule_float_event_key(file, &code, &in_test, &mut raw);
        }

        self.files.push(FileFacts {
            label: file.to_string(),
            ctx: ctx.clone(),
            stem: file
                .rsplit('/')
                .next()
                .unwrap_or(file)
                .trim_end_matches(".rs")
                .to_string(),
            code,
            fns,
            fields,
            allows,
            raw,
        });
    }

    /// Phase two: builds the workspace call graph, runs the transitive
    /// analyses, applies allow directives, and flags unused ones.
    /// Duplicate registry rows always fail; in `check_stale` mode (the
    /// `--workspace` sweep) registered fork streams with no call site
    /// and unregistered/stale locks fail too, so the tables cannot rot.
    pub fn finish(&mut self, check_stale: bool) {
        let mut all: Vec<Diagnostic> = Vec::new();
        {
            let views: Vec<FileView<'_>> = self
                .files
                .iter()
                .map(|f| FileView {
                    code: &f.code,
                    fns: &f.fns,
                    fields: &f.fields,
                    file: &f.label,
                    krate: &f.ctx.name,
                    stem: &f.stem,
                    test_target: f.ctx.test_target,
                })
                .collect();
            let graph = Graph::build(&views);
            for marker in PROPAGATED_MARKERS {
                let roots = graph.roots(marker);
                if roots.is_empty() {
                    continue;
                }
                for (node, chain) in graph.propagate(marker, &roots) {
                    all.extend(propagated_diags(&graph, marker, node, &chain));
                }
            }
            all.extend(locks::check(&graph, &self.locks, check_stale));
            all.extend(rule_fork_escape(&graph));
        }
        for f in &mut self.files {
            all.append(&mut f.raw);
        }
        for (line, krate, stream) in std::mem::take(&mut self.forks.duplicates) {
            all.push(Diagnostic {
                file: self.forks.path.clone(),
                line,
                col: 1,
                rule: RULE_FORK,
                message: format!("duplicate registry row for fork({stream}) in crate `{krate}`"),
                chain: Vec::new(),
            });
        }
        if check_stale {
            for ((krate, stream), entry) in self.forks.iter() {
                if !self.fork_sites.contains_key(&(krate.clone(), *stream)) {
                    all.push(Diagnostic {
                        file: self.forks.path.clone(),
                        line: entry.line,
                        col: 1,
                        rule: RULE_FORK,
                        message: format!(
                            "registered fork({stream}) for crate `{krate}` \
                             (\"{}\") has no literal call site; remove the row",
                            entry.purpose
                        ),
                        chain: Vec::new(),
                    });
                }
            }
        }
        all.sort();
        // A directive suppresses exactly one diagnostic of its rule, on
        // the directive's own line or the line directly below it —
        // including transitive findings reported at that line. The
        // meta-rules (`unknown-rule`, `unused-allow`) cannot be allowed.
        let files = &mut self.files;
        all.retain(|diag| {
            if diag.rule == RULE_UNKNOWN || diag.rule == RULE_UNUSED_ALLOW {
                return true;
            }
            for f in files.iter_mut() {
                if f.label != diag.file {
                    continue;
                }
                for allow in f.allows.iter_mut() {
                    if !allow.used
                        && allow.rule == diag.rule
                        && (allow.line == diag.line || allow.line + 1 == diag.line)
                    {
                        allow.used = true;
                        return false;
                    }
                }
            }
            true
        });
        for f in &self.files {
            for allow in &f.allows {
                if !allow.used {
                    all.push(Diagnostic {
                        file: f.label.clone(),
                        line: allow.line,
                        col: allow.col,
                        rule: RULE_UNUSED_ALLOW,
                        message: format!(
                            "allow({rule}) suppresses nothing: no `{rule}` diagnostic \
                             fires on this line or the next — delete the directive",
                            rule = allow.rule
                        ),
                        chain: Vec::new(),
                    });
                }
            }
        }
        all.append(&mut self.unknown);
        all.sort();
        self.diagnostics = all;
    }

    fn rule_fork_discipline(
        &mut self,
        file: &str,
        code: &[Token],
        ctx: &CrateContext,
        in_test: &dyn Fn(usize) -> bool,
        raw: &mut Vec<Diagnostic>,
    ) {
        for i in 0..code.len() {
            if !(code[i].kind == TokenKind::Ident && code[i].text == "fork") {
                continue;
            }
            if in_test(i) {
                continue;
            }
            let Some(stream) = fork_literal_arg(code, i) else {
                continue;
            };
            let tok = &code[i];
            let key = (ctx.name.clone(), stream);
            if self.forks.get(&ctx.name, stream).is_none() {
                raw.push(Diagnostic::new(
                    file,
                    tok,
                    RULE_FORK,
                    format!(
                        "fork({stream}) in crate `{}` is not registered in {}",
                        ctx.name,
                        if self.forks.path.is_empty() {
                            "the fork registry (pass --forks FORKS.md)"
                        } else {
                            &self.forks.path
                        }
                    ),
                ));
            } else if let Some((first_file, first_line)) = self.fork_sites.get(&key) {
                raw.push(Diagnostic::new(
                    file,
                    tok,
                    RULE_FORK,
                    format!(
                        "fork({stream}) collides with the stream already drawn at \
                         {first_file}:{first_line} in crate `{}`",
                        ctx.name
                    ),
                ));
            }
            self.fork_sites
                .entry(key)
                .or_insert_with(|| (file.to_string(), tok.line));
        }
    }
}

/// Findings for one function reached through the call graph; the message
/// names the annotated root, and the chain prints the call path.
fn propagated_diags(
    graph: &Graph<'_>,
    marker: &str,
    node: crate::graph::NodeId,
    chain: &[crate::graph::NodeId],
) -> Vec<Diagnostic> {
    let fv = &graph.files[node.0];
    let f = &fv.fns[node.1];
    let Some((start, end)) = f.body else {
        return Vec::new();
    };
    let chain_disp: Vec<String> = chain.iter().map(|n| graph.display(*n)).collect();
    let root = chain_disp[0].clone();
    let code = fv.code;
    let mut out = Vec::new();
    let mut push = |i: usize, rule: &'static str, message: String| {
        out.push(Diagnostic {
            file: fv.file.to_string(),
            line: code[i].line,
            col: code[i].col,
            rule,
            message,
            chain: chain_disp.clone(),
        });
    };
    match marker {
        "hot_path" => {
            for (i, construct) in alloc_findings(code, start, end) {
                push(
                    i,
                    RULE_HOT_PATH,
                    format!(
                        "allocating construct `{construct}` in `{}`, reachable from \
                         hot-path fn `{root}` (banned: {})",
                        f.name,
                        ALLOC_CONSTRUCTS.join(", ")
                    ),
                );
            }
        }
        "pure_model" => {
            for (i, what) in effect_findings(code, start, end) {
                push(
                    i,
                    RULE_PURE_MODEL,
                    format!(
                        "`.{}(...)` is {what} in `{}`, reachable from pure-model fn \
                         `{root}`; every effect must flow through the dispatcher so \
                         recorded traces replay through the pure models alone",
                        code[i].text, f.name
                    ),
                );
            }
        }
        "shard_merge" => {
            for i in shard_findings(code, start, end) {
                push(
                    i,
                    RULE_SHARD_BOUNDARY,
                    format!(
                        "`{}` in `{}`, reachable from shard-merge fn `{root}`: the \
                         merged event order must stay a pure function of (time, seq)",
                        code[i].text, f.name
                    ),
                );
            }
        }
        "epoch_shard" => {
            // RNG draws are direct-only (per-node streams in callees are
            // the sanctioned mechanism); globals propagate.
            for (i, what) in epoch_findings(code, start, end, false) {
                let message = match what {
                    EpochEffect::EventSeq => format!(
                        "global `event_seq` touched in `{}`, reachable from \
                         epoch-shard fn `{root}`; only the barrier may advance the \
                         global counter",
                        f.name
                    ),
                    _ => format!(
                        "`.{}(...)` mutates the shared Medium in `{}`, reachable \
                         from epoch-shard fn `{root}`; buffer the effect and apply \
                         it after the epoch barrier",
                        code[i].text, f.name
                    ),
                };
                push(i, RULE_EPOCH_BARRIER, message);
            }
        }
        _ => {}
    }
    out
}

/// `let`-bound literal fork handles that escape into unresolvable calls.
fn rule_fork_escape(graph: &Graph<'_>) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for (fi, fv) in graph.files.iter().enumerate() {
        if fv.test_target {
            continue;
        }
        for (ni, f) in fv.fns.iter().enumerate() {
            if f.in_cfg_test {
                continue;
            }
            let Some((start, end)) = f.body else {
                continue;
            };
            let code = fv.code;
            let Some(calls) = graph.calls.get(&crate::graph::NodeId(fi, ni)) else {
                continue;
            };
            for i in start..end.min(code.len()) {
                if !is_ident(code, i, "fork") || i == 0 || !is_punct(code, i - 1, ".") {
                    continue;
                }
                let Some(stream) = fork_literal_arg(code, i) else {
                    continue;
                };
                // `let [mut] handle = receiver.fork(N)` — walk back over
                // the receiver chain to the binding.
                let mut j = i.wrapping_sub(2);
                while j >= 2 && is_punct(code, j - 1, ".") && ident_at(code, j - 2).is_some() {
                    j -= 2;
                }
                if j < 2 || !is_punct(code, j - 1, "=") {
                    continue;
                }
                let Some(handle) = ident_at(code, j - 2) else {
                    continue;
                };
                let let_bound = is_ident(code, j.wrapping_sub(3), "let")
                    || (is_ident(code, j.wrapping_sub(3), "mut")
                        && is_ident(code, j.wrapping_sub(4), "let"));
                if !let_bound {
                    continue;
                }
                for call in calls {
                    if call.tok <= i || !call.resolved.is_empty() {
                        continue;
                    }
                    let name = call.callee.name();
                    // Capitalized unresolved callees are constructors
                    // (`Some(h)`, `Ok(h)`) — the handle stays in scope.
                    if name.chars().next().is_some_and(char::is_uppercase) {
                        continue;
                    }
                    if matches!(call.callee, Callee::TypeMethod(_, _)) {
                        continue;
                    }
                    // Does the handle appear among the call's arguments?
                    let mut open = call.tok + 1;
                    while open < code.len() && !is_punct(code, open, "(") {
                        open += 1;
                    }
                    let close = match_delim(code, open, "(", ")");
                    if (open + 1..close.min(end)).any(|k| is_ident(code, k, handle)) {
                        out.push(Diagnostic::new(
                            fv.file,
                            &code[call.tok],
                            RULE_FORK_ESCAPE,
                            format!(
                                "RNG handle `{handle}` from fork({stream}) escapes into \
                                 `{name}`, which resolves to no workspace function; the \
                                 stream's draws cannot be checked — keep fork handles \
                                 inside analyzed code or draw the values first",
                            ),
                        ));
                    }
                }
            }
        }
    }
    out
}

// ---- token helpers --------------------------------------------------------

fn is_punct(code: &[Token], i: usize, text: &str) -> bool {
    code.get(i)
        .is_some_and(|t| t.kind == TokenKind::Punct && t.text == text)
}

fn is_ident(code: &[Token], i: usize, text: &str) -> bool {
    code.get(i)
        .is_some_and(|t| t.kind == TokenKind::Ident && t.text == text)
}

fn ident_at(code: &[Token], i: usize) -> Option<&str> {
    code.get(i)
        .filter(|t| t.kind == TokenKind::Ident)
        .map(|t| t.text.as_str())
}

/// Index of the matching closer for the opener at `open` (`(`/`[`/`{`),
/// or `code.len()` when unbalanced.
fn match_delim(code: &[Token], open: usize, open_c: &str, close_c: &str) -> usize {
    let mut depth = 0usize;
    for (i, tok) in code.iter().enumerate().skip(open) {
        if tok.kind == TokenKind::Punct {
            if tok.text == open_c {
                depth += 1;
            } else if tok.text == close_c {
                depth -= 1;
                if depth == 0 {
                    return i;
                }
            }
        }
    }
    code.len()
}

/// Counts top-level generic arguments of the `<...>` opening at `open`,
/// returning `(args, close_index)`. `->` arrows inside (e.g. `fn(A) -> B`
/// types) are skipped so their `>` does not close the list.
fn generic_args(code: &[Token], open: usize) -> (usize, usize) {
    let mut angle = 0i32;
    let mut paren = 0i32;
    let mut square = 0i32;
    let mut commas = 0usize;
    let mut i = open;
    while i < code.len() {
        let t = &code[i];
        if t.kind == TokenKind::Punct {
            match t.text.as_str() {
                "<" => angle += 1,
                ">" => {
                    angle -= 1;
                    if angle == 0 {
                        return (commas + 1, i);
                    }
                }
                "-" if is_punct(code, i + 1, ">") => i += 1, // skip `->`
                "(" => paren += 1,
                ")" => paren -= 1,
                "[" => square += 1,
                "]" => square -= 1,
                "," if angle == 1 && paren == 0 && square == 0 => commas += 1,
                _ => {}
            }
        }
        i += 1;
    }
    (commas + 1, code.len())
}

/// Skips a run of `#[...]` attributes starting at `j`.
fn skip_attrs(code: &[Token], mut j: usize) -> usize {
    while is_punct(code, j, "#") && is_punct(code, j + 1, "[") {
        j = match_delim(code, j + 1, "[", "]") + 1;
    }
    j
}

/// `fork ( <int> )` — returns the literal stream number.
fn fork_literal_arg(code: &[Token], i: usize) -> Option<u64> {
    if !is_punct(code, i + 1, "(") || !is_punct(code, i + 3, ")") {
        return None;
    }
    let lit = code.get(i + 2)?;
    if lit.kind != TokenKind::Int {
        return None;
    }
    let digits: String = lit.text.chars().filter(|c| c.is_ascii_digit()).collect();
    // Hex/octal/binary streams would mis-parse through the digit filter;
    // nobody writes fork(0x4), so treat them as non-literal instead.
    if lit.text.starts_with("0x") || lit.text.starts_with("0o") || lit.text.starts_with("0b") {
        return None;
    }
    digits.parse().ok()
}

/// Token index ranges (inclusive) of `#[cfg(test)] mod ... { ... }` bodies.
fn cfg_test_ranges(code: &[Token]) -> Vec<(usize, usize)> {
    let mut ranges = Vec::new();
    let mut i = 0;
    while i + 6 < code.len() {
        let is_cfg_test = is_punct(code, i, "#")
            && is_punct(code, i + 1, "[")
            && is_ident(code, i + 2, "cfg")
            && is_punct(code, i + 3, "(")
            && is_ident(code, i + 4, "test")
            && is_punct(code, i + 5, ")")
            && is_punct(code, i + 6, "]");
        if !is_cfg_test {
            i += 1;
            continue;
        }
        let j = skip_attrs(code, i + 7);
        if is_ident(code, j, "mod") {
            // `mod name { ... }` — find the body braces.
            let mut k = j + 1;
            while k < code.len() && !is_punct(code, k, "{") && !is_punct(code, k, ";") {
                k += 1;
            }
            if is_punct(code, k, "{") {
                let end = match_delim(code, k, "{", "}");
                ranges.push((k, end));
                i = end + 1;
                continue;
            }
        }
        i = j.max(i + 1);
    }
    ranges
}

// ---- directives -----------------------------------------------------------

/// Extracts `simlint: allow(rule, ...)` budgets from comments, plus
/// [`RULE_UNKNOWN`] diagnostics for names that match no rule.
fn parse_directives(file: &str, tokens: &[Token]) -> (Vec<Allow>, Vec<Diagnostic>) {
    let mut allows = Vec::new();
    let mut diags = Vec::new();
    for tok in tokens {
        // Directives are plain `// simlint: ...` line comments whose
        // content starts with the marker. Doc comments (`///`, `//!`) and
        // prose that merely *mentions* a directive are never directives.
        if tok.kind != TokenKind::LineComment {
            continue;
        }
        let body = tok.text.trim_start_matches('/');
        if tok.text.starts_with("///") || tok.text.starts_with("//!") {
            continue;
        }
        let Some(rest) = body.trim_start().strip_prefix("simlint:") else {
            continue;
        };
        let rest = rest.trim_start();
        let args = rest
            .strip_prefix("allow")
            .map(str::trim_start)
            .and_then(|r| r.strip_prefix('('))
            .and_then(|r| r.split_once(')'))
            .map(|(inside, _)| inside);
        let Some(args) = args else {
            diags.push(Diagnostic::new(
                file,
                tok,
                RULE_UNKNOWN,
                "malformed simlint directive; expected \
                 `simlint: allow(<rule>)`"
                    .to_string(),
            ));
            continue;
        };
        for name in args.split(',') {
            let name = name.trim();
            match ALL_RULES.iter().find(|r| **r == name) {
                Some(rule) => allows.push(Allow {
                    rule,
                    line: tok.line,
                    col: tok.col,
                    used: false,
                }),
                None => diags.push(Diagnostic::new(
                    file,
                    tok,
                    RULE_UNKNOWN,
                    format!(
                        "unknown rule `{name}` in allow directive (known: {})",
                        ALL_RULES.join(", ")
                    ),
                )),
            }
        }
    }
    (allows, diags)
}

// ---- individual rules -----------------------------------------------------

fn rule_nondet_iteration(file: &str, code: &[Token], raw: &mut Vec<Diagnostic>) {
    for i in 0..code.len() {
        let Some(name) = ident_at(code, i) else {
            continue;
        };
        if name != "HashMap" && name != "HashSet" {
            continue;
        }
        // Hasher parameter position: HashMap<K, V, S>, HashSet<T, S>.
        let with_hasher_arity = if name == "HashMap" { 3 } else { 2 };
        let open = if is_punct(code, i + 1, "<") {
            Some(i + 1)
        } else if is_punct(code, i + 1, ":")
            && is_punct(code, i + 2, ":")
            && is_punct(code, i + 3, "<")
        {
            Some(i + 3)
        } else {
            None
        };
        let tok = &code[i];
        if let Some(open) = open {
            let (args, _) = generic_args(code, open);
            if args < with_hasher_arity {
                raw.push(Diagnostic::new(
                    file,
                    tok,
                    RULE_NONDET_ITER,
                    format!(
                        "`{name}` with the default `RandomState` hasher: iteration \
                         order is nondeterministic; use a BTree collection or an \
                         explicit deterministic hasher"
                    ),
                ));
            }
        } else if is_punct(code, i + 1, ":")
            && is_punct(code, i + 2, ":")
            && matches!(ident_at(code, i + 3), Some("new" | "with_capacity"))
        {
            raw.push(Diagnostic::new(
                file,
                tok,
                RULE_NONDET_ITER,
                format!(
                    "`{name}::{}` always uses the random-seeded `RandomState`; \
                     use a BTree collection or `::default()` on an alias with a \
                     deterministic hasher",
                    ident_at(code, i + 3).expect("checked")
                ),
            ));
        }
    }
}

fn rule_wall_clock(file: &str, code: &[Token], raw: &mut Vec<Diagnostic>) {
    let mut in_use = false;
    for i in 0..code.len() {
        let tok = &code[i];
        match tok.kind {
            TokenKind::Ident if tok.text == "use" => in_use = true,
            TokenKind::Punct if tok.text == ";" => in_use = false,
            TokenKind::Ident if tok.text == "Instant" || tok.text == "SystemTime" => {
                let construction = is_punct(code, i + 1, ":")
                    && is_punct(code, i + 2, ":")
                    && matches!(ident_at(code, i + 3), Some("now" | "UNIX_EPOCH"));
                if in_use || construction {
                    raw.push(Diagnostic::new(
                        file,
                        tok,
                        RULE_WALL_CLOCK,
                        format!(
                            "`{}` reads the wall clock; simulation code must use \
                             `SimTime` (bench/testkit are exempt)",
                            tok.text
                        ),
                    ));
                }
            }
            _ => {}
        }
    }
}

const ALLOC_CONSTRUCTS: &[&str] = &[
    "Vec::new",
    "vec![]",
    "to_vec",
    "collect",
    "format!",
    "Box::new",
    "String::from",
];

/// Allocating constructs in `[start, end)`, as `(token index, label)`.
fn alloc_findings(code: &[Token], start: usize, end: usize) -> Vec<(usize, &'static str)> {
    let mut out = Vec::new();
    for i in start..end.min(code.len()) {
        let Some(name) = ident_at(code, i) else {
            continue;
        };
        let path_new = |what: &str| {
            name == what
                && is_punct(code, i + 1, ":")
                && is_punct(code, i + 2, ":")
                && is_ident(code, i + 3, "new")
        };
        if path_new("Vec") {
            out.push((i, "Vec::new"));
        } else if path_new("Box") {
            out.push((i, "Box::new"));
        } else if name == "String"
            && is_punct(code, i + 1, ":")
            && is_punct(code, i + 2, ":")
            && is_ident(code, i + 3, "from")
        {
            out.push((i, "String::from"));
        } else if (name == "vec" || name == "format") && is_punct(code, i + 1, "!") {
            out.push((i, if name == "vec" { "vec![]" } else { "format!" }));
        } else if (name == "to_vec" || name == "collect") && i > 0 && is_punct(code, i - 1, ".") {
            out.push((
                i,
                if name == "to_vec" {
                    "to_vec"
                } else {
                    "collect"
                },
            ));
        }
    }
    out
}

/// Effectful method calls in `[start, end)`: RNG draws, event-queue
/// scheduling/cancellation, and `Medium` mutation. The scan looks for
/// `.name(` receivers, so type paths and doc text never fire.
fn effect_findings(code: &[Token], start: usize, end: usize) -> Vec<(usize, &'static str)> {
    let mut out = Vec::new();
    for i in start..end.min(code.len()) {
        let Some(name) = ident_at(code, i) else {
            continue;
        };
        if i == 0 || !is_punct(code, i - 1, ".") || !is_punct(code, i + 1, "(") {
            continue;
        }
        let what = if name == "fork" || name.starts_with("gen_") {
            "an RNG draw"
        } else if name == "schedule" || name == "cancel" {
            "an event-queue mutation"
        } else if name == "begin_transmission" || name == "finish_transmission" {
            "a Medium mutation"
        } else {
            continue;
        };
        out.push((i, what));
    }
    out
}

/// `HashMap`/`HashSet` mentions in `[start, end)` (any hasher).
fn shard_findings(code: &[Token], start: usize, end: usize) -> Vec<usize> {
    (start..end.min(code.len()))
        .filter(|&i| matches!(ident_at(code, i), Some("HashMap" | "HashSet")))
        .collect()
}

/// What an epoch-shard finding touched.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EpochEffect {
    /// The global `event_seq` counter.
    EventSeq,
    /// An RNG receiver draw (`.fork(` / `.gen_*(`); direct scans only.
    Rng,
    /// Shared `Medium` mutation.
    Medium,
}

/// Epoch-barrier hazards in `[start, end)`. With `include_rng` false
/// (the propagated scan) RNG receiver draws are skipped: per-node
/// streams inside the node models a drain calls into are sanctioned.
fn epoch_findings(
    code: &[Token],
    start: usize,
    end: usize,
    include_rng: bool,
) -> Vec<(usize, EpochEffect)> {
    let mut out = Vec::new();
    for i in start..end.min(code.len()) {
        let Some(name) = ident_at(code, i) else {
            continue;
        };
        if name == "event_seq" {
            out.push((i, EpochEffect::EventSeq));
            continue;
        }
        if i == 0 || !is_punct(code, i - 1, ".") || !is_punct(code, i + 1, "(") {
            continue;
        }
        if name == "fork" || name.starts_with("gen_") {
            if include_rng {
                out.push((i, EpochEffect::Rng));
            }
        } else if matches!(
            name,
            "begin_transmission"
                | "begin_transmission_into"
                | "finish_transmission"
                | "end_transmission"
        ) {
            out.push((i, EpochEffect::Medium));
        }
    }
    out
}

/// The v1-format direct diagnostic for one epoch-shard finding.
fn epoch_direct_diag(
    file: &str,
    code: &[Token],
    i: usize,
    what: EpochEffect,
    fn_name: &str,
) -> Diagnostic {
    let tok = &code[i];
    let message = match what {
        EpochEffect::EventSeq => format!(
            "global `event_seq` touched inside epoch-shard fn \
             `{fn_name}`; shard drains must stamp re-armed events \
             from their disjoint (base + j*shards + s) lane and let \
             the barrier advance the global counter"
        ),
        EpochEffect::Rng => format!(
            "`.{}(...)` draws from an RNG receiver inside epoch-shard fn `{fn_name}`; \
             shard drains run concurrently — buffer the effect and \
             apply it after the epoch barrier",
            tok.text
        ),
        EpochEffect::Medium => format!(
            "`.{}(...)` mutates the shared Medium inside epoch-shard fn `{fn_name}`; \
             shard drains run concurrently — buffer the effect and \
             apply it after the epoch barrier",
            tok.text
        ),
    };
    Diagnostic::new(file, tok, RULE_EPOCH_BARRIER, message)
}

/// Serve-loop fns sit between a network peer and the scheduler: the
/// peer chooses how many bytes arrive and when. Three hazards are
/// banned. Whole-stream slurps (`read_to_end`/`read_to_string`) hand
/// the peer an unbounded allocation; frame loops must read
/// length-prefixed payloads and reject lengths over an explicit cap.
/// Buffer growth (`push`/`extend`/`extend_from_slice`/`append`/
/// `resize`) is allowed only when the fn visibly bounds it — some
/// identifier in the body mentioning `MAX`/capacity; otherwise
/// per-frame growth compounds across a session. And wall-clock reads
/// are banned outright: session behavior must be a function of the
/// protocol bytes, so pipe-mode replays and socket sessions behave
/// identically.
fn rule_serve_loop_block(
    file: &str,
    code: &[Token],
    start: usize,
    end: usize,
    fn_name: &str,
    raw: &mut Vec<Diagnostic>,
) {
    let end = end.min(code.len());
    // A bound mention anywhere in the body legitimizes growth calls:
    // `MAX_FRAME_LEN`, `with_capacity`, `queue_capacity`, ...
    let has_bound = (start..end).any(|i| {
        ident_at(code, i).is_some_and(|name| name.contains("MAX") || name.contains("capacity"))
    });
    for i in start..end {
        let Some(name) = ident_at(code, i) else {
            continue;
        };
        let tok = &code[i];
        if (name == "Instant" || name == "SystemTime")
            && is_punct(code, i + 1, ":")
            && is_punct(code, i + 2, ":")
            && matches!(ident_at(code, i + 3), Some("now" | "UNIX_EPOCH"))
        {
            raw.push(Diagnostic::new(
                file,
                tok,
                RULE_SERVE_LOOP,
                format!(
                    "`{name}` wall-clock read inside serve-loop fn `{fn_name}`; \
                     session behavior must be a function of the protocol \
                     bytes, not the host clock",
                    name = tok.text
                ),
            ));
            continue;
        }
        if i == 0 || !is_punct(code, i - 1, ".") || !is_punct(code, i + 1, "(") {
            continue;
        }
        if name == "read_to_end" || name == "read_to_string" {
            raw.push(Diagnostic::new(
                file,
                tok,
                RULE_SERVE_LOOP,
                format!(
                    "`.{name}(...)` slurps unbounded peer input inside \
                     serve-loop fn `{fn_name}`; read length-prefixed frames \
                     and reject lengths over an explicit cap"
                ),
            ));
            continue;
        }
        if matches!(
            name,
            "push" | "extend" | "extend_from_slice" | "append" | "resize"
        ) && !has_bound
        {
            raw.push(Diagnostic::new(
                file,
                tok,
                RULE_SERVE_LOOP,
                format!(
                    "`.{name}(...)` grows a buffer inside serve-loop fn \
                     `{fn_name}` with no visible bound (no MAX_*/capacity \
                     mention in the fn); peer-driven growth must be capped"
                ),
            ));
        }
    }
}

fn rule_float_event_key(
    file: &str,
    code: &[Token],
    in_test: &dyn Fn(usize) -> bool,
    raw: &mut Vec<Diagnostic>,
) {
    let mut i = 0;
    while i + 3 < code.len() {
        let is_derive = is_punct(code, i, "#")
            && is_punct(code, i + 1, "[")
            && is_ident(code, i + 2, "derive")
            && is_punct(code, i + 3, "(");
        if !is_derive || in_test(i) {
            i += 1;
            continue;
        }
        let close_paren = match_delim(code, i + 3, "(", ")");
        let ordered =
            (i + 4..close_paren).any(|k| matches!(ident_at(code, k), Some("Ord" | "PartialOrd")));
        let attr_end = match_delim(code, i + 1, "[", "]");
        if !ordered {
            i = attr_end + 1;
            continue;
        }
        let mut j = skip_attrs(code, attr_end + 1);
        // Skip visibility (`pub`, `pub(crate)`).
        while matches!(
            ident_at(code, j),
            Some("pub" | "crate" | "in" | "super" | "self")
        ) || is_punct(code, j, "(")
            || is_punct(code, j, ")")
        {
            j += 1;
        }
        let keyword = ident_at(code, j);
        if !matches!(keyword, Some("struct" | "enum")) {
            i = attr_end + 1;
            continue;
        }
        let type_name = ident_at(code, j + 1).unwrap_or("?").to_string();
        // Find the item body: `{...}`, `(...);`, or a bare `;`.
        let mut k = j + 2;
        let body_range = loop {
            if k >= code.len() {
                break None;
            }
            if is_punct(code, k, "<") {
                let (_, close) = generic_args(code, k);
                k = close + 1;
                continue;
            }
            if is_punct(code, k, "{") {
                break Some((k + 1, match_delim(code, k, "{", "}")));
            }
            if is_punct(code, k, "(") {
                break Some((k + 1, match_delim(code, k, "(", ")")));
            }
            if is_punct(code, k, ";") {
                break None;
            }
            k += 1;
        };
        if let Some((lo, hi)) = body_range {
            for f in lo..hi.min(code.len()) {
                if matches!(ident_at(code, f), Some("f32" | "f64")) {
                    let tok = &code[f];
                    raw.push(Diagnostic::new(
                        file,
                        tok,
                        RULE_FLOAT_KEY,
                        format!(
                            "`{}` field in `{type_name}`, which derives an ordering: \
                             floats must never key the event queue (NaN breaks \
                             total order; rounding breaks replay)",
                            tok.text
                        ),
                    ));
                }
            }
            i = hi.max(attr_end) + 1;
        } else {
            i = attr_end + 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint_sim(source: &str) -> Vec<Diagnostic> {
        let mut linter = Linter::new(ForkRegistry::default(), LockRegistry::default());
        linter.lint_file("test.rs", source, &CrateContext::fixture());
        linter.finish(false);
        linter.diagnostics
    }

    #[test]
    fn default_hashmap_fires_and_custom_hasher_passes() {
        let diags = lint_sim(
            "type A = HashMap<u32, u32>;\n\
             type B = HashMap<u32, u32, BuildHasherDefault<H>>;\n\
             type C = HashSet<u64, BuildHasherDefault<H>>;\n\
             fn f() { let m: HashSet<u8> = HashSet::new(); }\n",
        );
        let fired: Vec<u32> = diags
            .iter()
            .filter(|d| d.rule == RULE_NONDET_ITER)
            .map(|d| d.line)
            .collect();
        assert_eq!(fired, vec![1, 4, 4]);
    }

    #[test]
    fn tuple_keys_do_not_inflate_arity() {
        let diags = lint_sim("type A = HashMap<(u32, u32), V>;\n");
        assert_eq!(diags.len(), 1, "{diags:?}");
    }

    #[test]
    fn strings_and_comments_never_fire() {
        let diags = lint_sim(
            "// HashMap::new() in a comment\n\
             const S: &str = \"HashMap::new() Instant::now()\";\n",
        );
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn wall_clock_fires_on_import_and_now() {
        let diags = lint_sim(
            "use std::time::Instant;\n\
             fn f() { let t = Instant::now(); let x: Option<Instant> = None; }\n",
        );
        let wall: Vec<u32> = diags
            .iter()
            .filter(|d| d.rule == RULE_WALL_CLOCK)
            .map(|d| d.line)
            .collect();
        // The import and the ::now() read fire; the type position does not.
        assert_eq!(wall, vec![1, 2]);
    }

    #[test]
    fn allow_suppresses_exactly_one() {
        let diags = lint_sim(
            "// simlint: allow(nondeterministic-iteration)\n\
             fn f() { let a = HashMap::<u32, u32>::new(); }\n\
             fn g() { let b: HashMap<u32, u32> = make(); }\n",
        );
        let fired: Vec<u32> = diags
            .iter()
            .filter(|d| d.rule == RULE_NONDET_ITER)
            .map(|d| d.line)
            .collect();
        assert_eq!(fired, vec![3], "only the un-allowed site remains");
    }

    #[test]
    fn comma_separated_allow_covers_multiple_rules() {
        let diags = lint_sim(
            "// simlint: allow(nondeterministic-iteration, wall-clock)\n\
             fn f() { let a = HashMap::<u32, u32>::new(); let t = Instant::now(); }\n",
        );
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn unused_allow_is_an_error_and_cannot_be_allowed() {
        let diags = lint_sim("// simlint: allow(wall-clock)\nfn f() {}\n");
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].rule, RULE_UNUSED_ALLOW);
        // Allowing unused-allow does not mask it.
        let diags = lint_sim(
            "// simlint: allow(unused-allow)\n\
             // simlint: allow(wall-clock)\n\
             fn f() {}\n",
        );
        let rules: Vec<&str> = diags.iter().map(|d| d.rule).collect();
        assert_eq!(
            rules,
            vec![RULE_UNUSED_ALLOW, RULE_UNUSED_ALLOW],
            "{diags:?}"
        );
    }

    #[test]
    fn unknown_rule_is_an_error() {
        let diags = lint_sim("// simlint: allow(no-such-rule)\n");
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, RULE_UNKNOWN);
    }

    #[test]
    fn hot_path_alloc_scans_only_annotated_fns() {
        let diags = lint_sim(
            "fn cold() { let v = vec![1]; }\n\
             #[cfg_attr(simlint, hot_path)]\n\
             fn hot(xs: &[u32]) -> Vec<u32> {\n\
                 let v: Vec<u32> = xs.iter().copied().collect();\n\
                 let s = format!(\"{v:?}\");\n\
                 v\n\
             }\n",
        );
        let hot: Vec<u32> = diags
            .iter()
            .filter(|d| d.rule == RULE_HOT_PATH)
            .map(|d| d.line)
            .collect();
        assert_eq!(hot, vec![4, 5]);
    }

    #[test]
    fn hot_path_alloc_propagates_through_helpers_with_chain() {
        let diags = lint_sim(
            "struct W;\n\
             impl W {\n\
                 #[cfg_attr(simlint, hot_path)]\n\
                 fn hot(&mut self) { self.step(); }\n\
                 fn step(&mut self) { helper(); }\n\
             }\n\
             fn helper() { let v = vec![1]; }\n",
        );
        let hot: Vec<&Diagnostic> = diags.iter().filter(|d| d.rule == RULE_HOT_PATH).collect();
        assert_eq!(hot.len(), 1, "{diags:?}");
        assert_eq!(hot[0].line, 7);
        assert_eq!(
            hot[0].chain,
            vec!["test::hot", "test::step", "test::helper"]
        );
        assert!(hot[0]
            .message
            .contains("reachable from hot-path fn `test::hot`"));
        assert!(format!("{}", hot[0]).contains("(via test::hot → test::step → test::helper)"));
    }

    #[test]
    fn allow_suppresses_a_propagated_finding_at_the_violation_site() {
        let diags = lint_sim(
            "struct W;\n\
             impl W {\n\
                 #[cfg_attr(simlint, hot_path)]\n\
                 fn hot(&mut self) { self.step(); }\n\
                 // simlint: allow(hot-path-alloc) — cold branch, measured\n\
                 fn step(&mut self) { let v = vec![1]; }\n\
             }\n",
        );
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn pure_model_effects_fire_only_in_annotated_fns() {
        let diags = lint_sim(
            "fn dispatcher(&mut self) { let r = self.rng.gen_unit_f64(); }\n\
             #[cfg_attr(simlint, pure_model)]\n\
             fn step(&mut self, q: &mut Q, m: &mut Medium) {\n\
                 let r = self.rng.gen_unit_f64();\n\
                 let s = self.rng.fork(3);\n\
                 let k = q.schedule(t, e);\n\
                 q.cancel(k);\n\
                 m.begin_transmission(n, now, airtime);\n\
                 self.tables.push(t);\n\
             }\n",
        );
        let fired: Vec<u32> = diags
            .iter()
            .filter(|d| d.rule == RULE_PURE_MODEL)
            .map(|d| d.line)
            .collect();
        assert_eq!(fired, vec![4, 5, 6, 7, 8]);
        // fork(3) inside the body also trips fork discipline separately;
        // the pure-model rule itself must not fire outside the marker.
        assert!(diags
            .iter()
            .all(|d| d.rule != RULE_PURE_MODEL || d.line >= 4));
    }

    #[test]
    fn pure_model_effects_propagate_to_callees() {
        let diags = lint_sim(
            "struct M;\n\
             impl M {\n\
                 #[cfg_attr(simlint, pure_model)]\n\
                 fn decide(&self) { self.inner(); }\n\
                 fn inner(&self) { self.rng.gen_unit_f64(); }\n\
             }\n",
        );
        let pure: Vec<&Diagnostic> = diags.iter().filter(|d| d.rule == RULE_PURE_MODEL).collect();
        assert_eq!(pure.len(), 1, "{diags:?}");
        assert_eq!(pure[0].line, 5);
        assert_eq!(pure[0].chain, vec!["test::decide", "test::inner"]);
    }

    #[test]
    fn epoch_barrier_fires_only_in_annotated_fns() {
        let diags = lint_sim(
            "fn barrier(&mut self) { self.event_seq += 1; self.medium.begin_transmission(n, t); }\n\
             #[cfg_attr(simlint, epoch_shard)]\n\
             fn drain(&mut self, q: &mut Q, m: &mut Medium) {\n\
                 let r = self.rng.gen_unit_f64();\n\
                 self.event_seq += 1;\n\
                 m.begin_transmission_into(n, now, airtime);\n\
                 q.schedule_seq(t, s, e);\n\
                 q.cancel(k);\n\
             }\n",
        );
        let fired: Vec<u32> = diags
            .iter()
            .filter(|d| d.rule == RULE_EPOCH_BARRIER)
            .map(|d| d.line)
            .collect();
        // RNG draw, global counter, Medium mutation fire; the shard's own
        // queue operations (schedule_seq/cancel) are the drain's job.
        assert_eq!(fired, vec![4, 5, 6]);
    }

    #[test]
    fn epoch_barrier_propagates_globals_but_not_per_node_rng() {
        let diags = lint_sim(
            "struct Shard;\n\
             impl Shard {\n\
                 #[cfg_attr(simlint, epoch_shard)]\n\
                 fn drain(&mut self) { self.node_step(); }\n\
                 fn node_step(&mut self) {\n\
                     let r = self.rng.gen_unit_f64();\n\
                     self.event_seq += 1;\n\
                 }\n\
             }\n",
        );
        let fired: Vec<u32> = diags
            .iter()
            .filter(|d| d.rule == RULE_EPOCH_BARRIER)
            .map(|d| d.line)
            .collect();
        // The per-node RNG draw in the callee is sanctioned; the global
        // counter touch propagates.
        assert_eq!(fired, vec![7], "{diags:?}");
    }

    #[test]
    fn serve_loop_fires_on_slurps_growth_and_wall_clock() {
        let diags = lint_sim(
            "fn anywhere(&mut self) { self.buf.read_to_end(&mut v); }\n\
             #[cfg_attr(simlint, serve_loop)]\n\
             fn session(&mut self, input: &mut R) {\n\
                 input.read_to_end(&mut self.buf);\n\
                 input.read_to_string(&mut self.text);\n\
                 self.frames.push(frame);\n\
                 let t = Instant::now();\n\
             }\n",
        );
        let fired: Vec<u32> = diags
            .iter()
            .filter(|d| d.rule == RULE_SERVE_LOOP)
            .map(|d| d.line)
            .collect();
        assert_eq!(fired, vec![4, 5, 6, 7], "unmarked fns never fire");
    }

    #[test]
    fn serve_loop_growth_passes_with_a_visible_bound() {
        let diags = lint_sim(
            "#[cfg_attr(simlint, serve_loop)]\n\
             fn read_frame(&mut self) {\n\
                 if len > MAX_FRAME_LEN { return Err(too_big(len)); }\n\
                 self.buf.resize(len, 0);\n\
                 self.frames.push(frame);\n\
             }\n\
             #[cfg_attr(simlint, serve_loop)]\n\
             fn admit(&mut self, jobs: Vec<Job>) {\n\
                 let mut out = Vec::with_capacity(jobs.len());\n\
                 out.extend(jobs);\n\
             }\n",
        );
        assert!(diags.iter().all(|d| d.rule != RULE_SERVE_LOOP), "{diags:?}");
    }

    #[test]
    fn float_event_key_fires_on_ordered_types_only() {
        let diags = lint_sim(
            "#[derive(PartialOrd, PartialEq)]\n\
             struct Bad { t: f64 }\n\
             #[derive(Clone)]\n\
             struct Fine { t: f64 }\n\
             #[derive(Ord, PartialOrd, Eq, PartialEq)]\n\
             struct Good(u64);\n",
        );
        let float: Vec<u32> = diags
            .iter()
            .filter(|d| d.rule == RULE_FLOAT_KEY)
            .map(|d| d.line)
            .collect();
        assert_eq!(float, vec![2]);
    }

    #[test]
    fn fork_literals_must_be_registered_and_unique() {
        let registry = ForkRegistry::parse("R.md", "| fixture | 4 | x |\n");
        let mut linter = Linter::new(registry, LockRegistry::default());
        linter.lint_file(
            "a.rs",
            "fn f(r: &SimRng) { let a = r.fork(4); let b = r.fork(4); let c = r.fork(9); }\n",
            &CrateContext::fixture(),
        );
        linter.finish(false);
        let fork: Vec<String> = linter
            .diagnostics
            .iter()
            .filter(|d| d.rule == RULE_FORK)
            .map(|d| d.message.clone())
            .collect();
        assert_eq!(fork.len(), 2, "{fork:?}");
        assert!(fork.iter().any(|m| m.contains("collides")));
        assert!(fork.iter().any(|m| m.contains("not registered")));
    }

    #[test]
    fn stale_registry_rows_fail_workspace_runs() {
        let registry = ForkRegistry::parse("R.md", "| fixture | 4 | x |\n| fixture | 5 | y |\n");
        let mut linter = Linter::new(registry, LockRegistry::default());
        linter.lint_file(
            "a.rs",
            "fn f(r: &SimRng) { let a = r.fork(4); }\n",
            &CrateContext::fixture(),
        );
        linter.finish(true);
        assert_eq!(linter.diagnostics.len(), 1);
        assert!(linter.diagnostics[0]
            .message
            .contains("no literal call site"));
        assert_eq!(linter.diagnostics[0].file, "R.md");
    }

    #[test]
    fn cfg_test_modules_are_exempt_from_fork_discipline() {
        let diags = lint_sim(
            "#[cfg(test)]\n\
             mod tests {\n\
                 fn f(r: &SimRng) { let a = r.fork(123); }\n\
             }\n",
        );
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn fork_escape_fires_when_a_handle_leaves_the_workspace() {
        let registry = ForkRegistry::parse("R.md", "| fixture | 7 | x |\n");
        let mut linter = Linter::new(registry, LockRegistry::default());
        linter.lint_file(
            "a.rs",
            "fn f(r: &SimRng) {\n\
                 let mut h = r.fork(7);\n\
                 stash(&mut h);\n\
             }\n",
            &CrateContext::fixture(),
        );
        linter.finish(false);
        let escapes: Vec<&Diagnostic> = linter
            .diagnostics
            .iter()
            .filter(|d| d.rule == RULE_FORK_ESCAPE)
            .collect();
        assert_eq!(escapes.len(), 1, "{:?}", linter.diagnostics);
        assert!(escapes[0].message.contains("escapes into `stash`"));
    }

    #[test]
    fn fork_escape_passes_for_workspace_resolvable_calls_and_draws() {
        let registry = ForkRegistry::parse("R.md", "| fixture | 7 | x |\n");
        let mut linter = Linter::new(registry, LockRegistry::default());
        linter.lint_file(
            "a.rs",
            "fn f(r: &SimRng) {\n\
                 let mut h = r.fork(7);\n\
                 place(&mut h, 4);\n\
                 let x = h.gen_unit_f64();\n\
                 let w = Some(h);\n\
             }\n\
             fn place(rng: &mut SimRng, n: u32) {}\n",
            &CrateContext::fixture(),
        );
        linter.finish(false);
        assert!(
            linter
                .diagnostics
                .iter()
                .all(|d| d.rule != RULE_FORK_ESCAPE),
            "{:?}",
            linter.diagnostics
        );
    }

    #[test]
    fn cross_file_propagation_carries_both_files_in_the_chain() {
        let mut linter = Linter::new(ForkRegistry::default(), LockRegistry::default());
        linter.lint_file(
            "entry.rs",
            "#[cfg_attr(simlint, shard_merge)]\n\
             fn merge(&mut self) { route_all(self); }\n",
            &CrateContext::fixture(),
        );
        linter.lint_file(
            "router.rs",
            "pub fn route_all(w: &mut W) { let m: HashMap<u32, u32> = seed(); }\n",
            &CrateContext::fixture(),
        );
        linter.finish(false);
        let shard: Vec<&Diagnostic> = linter
            .diagnostics
            .iter()
            .filter(|d| d.rule == RULE_SHARD_BOUNDARY)
            .collect();
        assert_eq!(shard.len(), 1, "{:?}", linter.diagnostics);
        assert_eq!(shard[0].file, "router.rs");
        assert_eq!(shard[0].chain, vec!["entry::merge", "router::route_all"]);
    }
}
