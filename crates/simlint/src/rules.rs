//! The project-invariant rules, the allow-directive machinery, and
//! the per-file lint driver.
//!
//! Every rule walks the comment-free code token stream from
//! [`crate::lexer`]; comments are consulted only for
//! `// simlint: allow(<rule>)` directives. Diagnostics carry 1-based
//! `line:col` spans and a stable rule id, and deny by default: any
//! diagnostic fails the build.

use crate::forks::ForkRegistry;
use crate::lexer::{lex, Token, TokenKind};
use std::collections::BTreeMap;

/// `HashMap`/`HashSet` with the default `RandomState`: iteration order is
/// randomized per process and can leak into event ordering or output.
pub const RULE_NONDET_ITER: &str = "nondeterministic-iteration";
/// `std::time::Instant` / `SystemTime` reads: wall-clock time must never
/// influence simulation state.
pub const RULE_WALL_CLOCK: &str = "wall-clock";
/// Literal `fork(N)` streams must be registered in `FORKS.md` and unique
/// per crate, so new subsystems cannot collide with existing RNG streams.
pub const RULE_FORK: &str = "rng-fork-discipline";
/// Functions annotated `#[cfg_attr(simlint, hot_path)]` must not contain
/// allocating constructs.
pub const RULE_HOT_PATH: &str = "hot-path-alloc";
/// Functions annotated `#[cfg_attr(simlint, pure_model)]` must not draw
/// RNG, touch the event queue, or mutate the `Medium`: every effect
/// belongs to the dispatcher, so recorded traces replay through the pure
/// models alone.
pub const RULE_PURE_MODEL: &str = "pure-model-effect";
/// Types deriving `Ord`/`PartialOrd` (candidate event-queue keys) must
/// not contain `f32`/`f64` fields.
pub const RULE_FLOAT_KEY: &str = "float-event-key";
/// Functions annotated `#[cfg_attr(simlint, shard_merge)]` route or merge
/// events across shard queues; any `HashMap`/`HashSet` there (default
/// hasher or not) risks iteration order leaking into the global event
/// order, which must stay a pure function of `(time, seq)`.
pub const RULE_SHARD_BOUNDARY: &str = "shard-boundary";
/// Functions annotated `#[cfg_attr(simlint, epoch_shard)]` run
/// concurrently, one per shard, inside a parallel epoch. They must not
/// mutate the shared `Medium`, draw from an RNG receiver (the global
/// stream is not shard-safe; per-node streams live inside the node
/// models), or touch the global `event_seq` counter — every global
/// effect belongs after the epoch barrier.
pub const RULE_EPOCH_BARRIER: &str = "epoch-barrier";
/// A `simlint: allow(...)` directive naming a rule that does not exist.
pub const RULE_UNKNOWN: &str = "unknown-rule";
/// Functions annotated `#[cfg_attr(simlint, serve_loop)]` sit on the
/// campaign server's session path, where the peer controls the input:
/// no whole-stream slurps (`read_to_end`/`read_to_string`), no buffer
/// growth without a visible bound (`MAX_*`/capacity mention in the fn),
/// and no wall-clock reads — session behavior must be a function of the
/// protocol bytes alone.
pub const RULE_SERVE_LOOP: &str = "serve-loop-block";

/// All rule ids, in diagnostic-documentation order.
pub const ALL_RULES: &[&str] = &[
    RULE_NONDET_ITER,
    RULE_WALL_CLOCK,
    RULE_FORK,
    RULE_HOT_PATH,
    RULE_PURE_MODEL,
    RULE_FLOAT_KEY,
    RULE_SHARD_BOUNDARY,
    RULE_EPOCH_BARRIER,
    RULE_SERVE_LOOP,
    RULE_UNKNOWN,
];

/// Crates whose state feeds event scheduling or report output; the
/// iteration and float-key rules apply only here.
pub const SIM_CRATES: &[&str] = &["sim-engine", "phy", "mac", "net", "core", "scenario"];

/// Crates that legitimately read the wall clock (benchmarks and the test
/// harness measure real elapsed time).
pub const WALL_CLOCK_EXEMPT: &[&str] = &["bench", "testkit"];

/// One finding, printable as `file:line:col: error[rule]: message`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Diagnostic {
    /// Path as given to the linter (workspace-relative in `--workspace`).
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column (characters).
    pub col: u32,
    /// Stable rule id from [`ALL_RULES`].
    pub rule: &'static str,
    /// Human-readable explanation.
    pub message: String,
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}:{}: error[{}]: {}",
            self.file, self.line, self.col, self.rule, self.message
        )
    }
}

/// Which rule set applies to a file.
#[derive(Debug, Clone)]
pub struct CrateContext {
    /// Crate directory name (`core`, `phy`, ...), `main` for the root
    /// crate, `fixture` for explicitly listed files.
    pub name: String,
    /// Subject to [`RULE_NONDET_ITER`] and [`RULE_FLOAT_KEY`].
    pub sim: bool,
    /// Exempt from [`RULE_WALL_CLOCK`].
    pub wall_clock_exempt: bool,
    /// Integration test / bench / example target: fork and float-key
    /// discipline does not apply (tests probe arbitrary streams).
    pub test_target: bool,
}

impl CrateContext {
    /// Context for a workspace-relative path.
    pub fn for_workspace_path(rel: &str) -> CrateContext {
        let parts: Vec<&str> = rel.split('/').collect();
        let (name, rest) = if parts.len() >= 3 && parts[0] == "crates" {
            (parts[1].to_string(), parts[2])
        } else {
            ("main".to_string(), parts.first().copied().unwrap_or(""))
        };
        let test_target = matches!(rest, "tests" | "benches" | "examples");
        CrateContext {
            sim: SIM_CRATES.contains(&name.as_str()),
            wall_clock_exempt: WALL_CLOCK_EXEMPT.contains(&name.as_str()),
            name,
            test_target,
        }
    }

    /// Context for an explicitly listed file (fixtures): every rule is
    /// active so the corpus can exercise the full rule set.
    pub fn fixture() -> CrateContext {
        CrateContext {
            name: "fixture".to_string(),
            sim: true,
            wall_clock_exempt: false,
            test_target: false,
        }
    }
}

/// An `allow` budget from one directive comment.
struct Allow {
    rule: &'static str,
    line: u32,
    used: bool,
}

/// Cross-file lint state: the fork registry plus every literal fork call
/// site seen so far.
pub struct Linter {
    registry: ForkRegistry,
    /// `(crate, stream) -> (file, line)` of the first literal call site.
    fork_sites: BTreeMap<(String, u64), (String, u32)>,
    /// Findings across all files linted so far.
    pub diagnostics: Vec<Diagnostic>,
}

impl Linter {
    /// A linter enforcing against the given registry.
    pub fn new(registry: ForkRegistry) -> Linter {
        Linter {
            registry,
            fork_sites: BTreeMap::new(),
            diagnostics: Vec::new(),
        }
    }

    /// Lints one file's source text under the given crate context.
    pub fn lint_file(&mut self, file: &str, source: &str, ctx: &CrateContext) {
        let tokens = lex(source);
        let (mut allows, unknown_diags) = parse_directives(file, &tokens);
        let code: Vec<&Token> = tokens
            .iter()
            .filter(|t| !matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment))
            .collect();
        let test_ranges = cfg_test_ranges(&code);
        let in_test = |i: usize| test_ranges.iter().any(|&(lo, hi)| lo <= i && i <= hi);

        let mut raw: Vec<Diagnostic> = Vec::new();
        if ctx.sim {
            rule_nondet_iteration(file, &code, &mut raw);
        }
        if !ctx.wall_clock_exempt {
            rule_wall_clock(file, &code, &mut raw);
        }
        if !ctx.test_target {
            self.rule_fork_discipline(file, &code, ctx, &in_test, &mut raw);
        }
        rule_hot_path_alloc(file, &code, &mut raw);
        rule_pure_model_effect(file, &code, &mut raw);
        rule_shard_boundary(file, &code, &mut raw);
        rule_epoch_barrier(file, &code, &mut raw);
        rule_serve_loop_block(file, &code, &mut raw);
        if ctx.sim && !ctx.test_target {
            rule_float_event_key(file, &code, &in_test, &mut raw);
        }

        raw.sort();
        // A directive suppresses exactly one diagnostic of its rule, on
        // the directive's own line or the line directly below it.
        raw.retain(|diag| {
            for allow in allows.iter_mut() {
                if !allow.used
                    && allow.rule == diag.rule
                    && (allow.line == diag.line || allow.line + 1 == diag.line)
                {
                    allow.used = true;
                    return false;
                }
            }
            true
        });
        self.diagnostics.extend(raw);
        // Unknown rule names are themselves errors and cannot be allowed.
        self.diagnostics.extend(unknown_diags);
    }

    /// Finishes the run: duplicate registry rows always fail; in
    /// `check_stale` mode (the `--workspace` sweep) registered streams
    /// with no call site fail too, so the table cannot rot.
    pub fn finish(&mut self, check_stale: bool) {
        for (line, krate, stream) in std::mem::take(&mut self.registry.duplicates) {
            self.diagnostics.push(Diagnostic {
                file: self.registry.path.clone(),
                line,
                col: 1,
                rule: RULE_FORK,
                message: format!("duplicate registry row for fork({stream}) in crate `{krate}`"),
            });
        }
        if check_stale {
            let mut stale: Vec<Diagnostic> = Vec::new();
            for ((krate, stream), entry) in self.registry.iter() {
                if !self.fork_sites.contains_key(&(krate.clone(), *stream)) {
                    stale.push(Diagnostic {
                        file: self.registry.path.clone(),
                        line: entry.line,
                        col: 1,
                        rule: RULE_FORK,
                        message: format!(
                            "registered fork({stream}) for crate `{krate}` \
                             (\"{}\") has no literal call site; remove the row",
                            entry.purpose
                        ),
                    });
                }
            }
            self.diagnostics.extend(stale);
        }
        self.diagnostics.sort();
    }

    fn rule_fork_discipline(
        &mut self,
        file: &str,
        code: &[&Token],
        ctx: &CrateContext,
        in_test: &dyn Fn(usize) -> bool,
        raw: &mut Vec<Diagnostic>,
    ) {
        for i in 0..code.len() {
            if !(code[i].kind == TokenKind::Ident && code[i].text == "fork") {
                continue;
            }
            if in_test(i) {
                continue;
            }
            let Some(stream) = fork_literal_arg(code, i) else {
                continue;
            };
            let tok = code[i];
            let key = (ctx.name.clone(), stream);
            if self.registry.get(&ctx.name, stream).is_none() {
                raw.push(Diagnostic {
                    file: file.to_string(),
                    line: tok.line,
                    col: tok.col,
                    rule: RULE_FORK,
                    message: format!(
                        "fork({stream}) in crate `{}` is not registered in {}",
                        ctx.name,
                        if self.registry.path.is_empty() {
                            "the fork registry (pass --forks FORKS.md)"
                        } else {
                            &self.registry.path
                        }
                    ),
                });
            } else if let Some((first_file, first_line)) = self.fork_sites.get(&key) {
                raw.push(Diagnostic {
                    file: file.to_string(),
                    line: tok.line,
                    col: tok.col,
                    rule: RULE_FORK,
                    message: format!(
                        "fork({stream}) collides with the stream already drawn at \
                         {first_file}:{first_line} in crate `{}`",
                        ctx.name
                    ),
                });
            }
            self.fork_sites
                .entry(key)
                .or_insert_with(|| (file.to_string(), tok.line));
        }
    }
}

// ---- token helpers --------------------------------------------------------

fn is_punct(code: &[&Token], i: usize, text: &str) -> bool {
    code.get(i)
        .is_some_and(|t| t.kind == TokenKind::Punct && t.text == text)
}

fn is_ident(code: &[&Token], i: usize, text: &str) -> bool {
    code.get(i)
        .is_some_and(|t| t.kind == TokenKind::Ident && t.text == text)
}

fn ident_at<'a>(code: &[&'a Token], i: usize) -> Option<&'a str> {
    code.get(i)
        .filter(|t| t.kind == TokenKind::Ident)
        .map(|t| t.text.as_str())
}

/// Index of the matching closer for the opener at `open` (`(`/`[`/`{`),
/// or `code.len()` when unbalanced.
fn match_delim(code: &[&Token], open: usize, open_c: &str, close_c: &str) -> usize {
    let mut depth = 0usize;
    for (i, tok) in code.iter().enumerate().skip(open) {
        if tok.kind == TokenKind::Punct {
            if tok.text == open_c {
                depth += 1;
            } else if tok.text == close_c {
                depth -= 1;
                if depth == 0 {
                    return i;
                }
            }
        }
    }
    code.len()
}

/// Counts top-level generic arguments of the `<...>` opening at `open`,
/// returning `(args, close_index)`. `->` arrows inside (e.g. `fn(A) -> B`
/// types) are skipped so their `>` does not close the list.
fn generic_args(code: &[&Token], open: usize) -> (usize, usize) {
    let mut angle = 0i32;
    let mut paren = 0i32;
    let mut square = 0i32;
    let mut commas = 0usize;
    let mut i = open;
    while i < code.len() {
        let t = code[i];
        if t.kind == TokenKind::Punct {
            match t.text.as_str() {
                "<" => angle += 1,
                ">" => {
                    angle -= 1;
                    if angle == 0 {
                        return (commas + 1, i);
                    }
                }
                "-" if is_punct(code, i + 1, ">") => i += 1, // skip `->`
                "(" => paren += 1,
                ")" => paren -= 1,
                "[" => square += 1,
                "]" => square -= 1,
                "," if angle == 1 && paren == 0 && square == 0 => commas += 1,
                _ => {}
            }
        }
        i += 1;
    }
    (commas + 1, code.len())
}

/// Skips a run of `#[...]` attributes starting at `j`.
fn skip_attrs(code: &[&Token], mut j: usize) -> usize {
    while is_punct(code, j, "#") && is_punct(code, j + 1, "[") {
        j = match_delim(code, j + 1, "[", "]") + 1;
    }
    j
}

/// `fork ( <int> )` — returns the literal stream number.
fn fork_literal_arg(code: &[&Token], i: usize) -> Option<u64> {
    if !is_punct(code, i + 1, "(") || !is_punct(code, i + 3, ")") {
        return None;
    }
    let lit = code.get(i + 2)?;
    if lit.kind != TokenKind::Int {
        return None;
    }
    let digits: String = lit.text.chars().filter(|c| c.is_ascii_digit()).collect();
    // Hex/octal/binary streams would mis-parse through the digit filter;
    // nobody writes fork(0x4), so treat them as non-literal instead.
    if lit.text.starts_with("0x") || lit.text.starts_with("0o") || lit.text.starts_with("0b") {
        return None;
    }
    digits.parse().ok()
}

/// Token index ranges (inclusive) of `#[cfg(test)] mod ... { ... }` bodies.
fn cfg_test_ranges(code: &[&Token]) -> Vec<(usize, usize)> {
    let mut ranges = Vec::new();
    let mut i = 0;
    while i + 6 < code.len() {
        let is_cfg_test = is_punct(code, i, "#")
            && is_punct(code, i + 1, "[")
            && is_ident(code, i + 2, "cfg")
            && is_punct(code, i + 3, "(")
            && is_ident(code, i + 4, "test")
            && is_punct(code, i + 5, ")")
            && is_punct(code, i + 6, "]");
        if !is_cfg_test {
            i += 1;
            continue;
        }
        let j = skip_attrs(code, i + 7);
        if is_ident(code, j, "mod") {
            // `mod name { ... }` — find the body braces.
            let mut k = j + 1;
            while k < code.len() && !is_punct(code, k, "{") && !is_punct(code, k, ";") {
                k += 1;
            }
            if is_punct(code, k, "{") {
                let end = match_delim(code, k, "{", "}");
                ranges.push((k, end));
                i = end + 1;
                continue;
            }
        }
        i = j.max(i + 1);
    }
    ranges
}

// ---- directives -----------------------------------------------------------

/// Extracts `simlint: allow(rule, ...)` budgets from comments, plus
/// [`RULE_UNKNOWN`] diagnostics for names that match no rule.
fn parse_directives(file: &str, tokens: &[Token]) -> (Vec<Allow>, Vec<Diagnostic>) {
    let mut allows = Vec::new();
    let mut diags = Vec::new();
    for tok in tokens {
        // Directives are plain `// simlint: ...` line comments whose
        // content starts with the marker. Doc comments (`///`, `//!`) and
        // prose that merely *mentions* a directive are never directives.
        if tok.kind != TokenKind::LineComment {
            continue;
        }
        let body = tok.text.trim_start_matches('/');
        if tok.text.starts_with("///") || tok.text.starts_with("//!") {
            continue;
        }
        let Some(rest) = body.trim_start().strip_prefix("simlint:") else {
            continue;
        };
        let rest = rest.trim_start();
        let args = rest
            .strip_prefix("allow")
            .map(str::trim_start)
            .and_then(|r| r.strip_prefix('('))
            .and_then(|r| r.split_once(')'))
            .map(|(inside, _)| inside);
        let Some(args) = args else {
            diags.push(Diagnostic {
                file: file.to_string(),
                line: tok.line,
                col: tok.col,
                rule: RULE_UNKNOWN,
                message: "malformed simlint directive; expected \
                          `simlint: allow(<rule>)`"
                    .to_string(),
            });
            continue;
        };
        for name in args.split(',') {
            let name = name.trim();
            match ALL_RULES.iter().find(|r| **r == name) {
                Some(rule) => allows.push(Allow {
                    rule,
                    line: tok.line,
                    used: false,
                }),
                None => diags.push(Diagnostic {
                    file: file.to_string(),
                    line: tok.line,
                    col: tok.col,
                    rule: RULE_UNKNOWN,
                    message: format!(
                        "unknown rule `{name}` in allow directive (known: {})",
                        ALL_RULES.join(", ")
                    ),
                }),
            }
        }
    }
    (allows, diags)
}

// ---- individual rules -----------------------------------------------------

fn rule_nondet_iteration(file: &str, code: &[&Token], raw: &mut Vec<Diagnostic>) {
    for i in 0..code.len() {
        let Some(name) = ident_at(code, i) else {
            continue;
        };
        if name != "HashMap" && name != "HashSet" {
            continue;
        }
        // Hasher parameter position: HashMap<K, V, S>, HashSet<T, S>.
        let with_hasher_arity = if name == "HashMap" { 3 } else { 2 };
        let open = if is_punct(code, i + 1, "<") {
            Some(i + 1)
        } else if is_punct(code, i + 1, ":")
            && is_punct(code, i + 2, ":")
            && is_punct(code, i + 3, "<")
        {
            Some(i + 3)
        } else {
            None
        };
        let tok = code[i];
        if let Some(open) = open {
            let (args, _) = generic_args(code, open);
            if args < with_hasher_arity {
                raw.push(Diagnostic {
                    file: file.to_string(),
                    line: tok.line,
                    col: tok.col,
                    rule: RULE_NONDET_ITER,
                    message: format!(
                        "`{name}` with the default `RandomState` hasher: iteration \
                         order is nondeterministic; use a BTree collection or an \
                         explicit deterministic hasher"
                    ),
                });
            }
        } else if is_punct(code, i + 1, ":")
            && is_punct(code, i + 2, ":")
            && matches!(ident_at(code, i + 3), Some("new" | "with_capacity"))
        {
            raw.push(Diagnostic {
                file: file.to_string(),
                line: tok.line,
                col: tok.col,
                rule: RULE_NONDET_ITER,
                message: format!(
                    "`{name}::{}` always uses the random-seeded `RandomState`; \
                     use a BTree collection or `::default()` on an alias with a \
                     deterministic hasher",
                    ident_at(code, i + 3).expect("checked")
                ),
            });
        }
    }
}

fn rule_wall_clock(file: &str, code: &[&Token], raw: &mut Vec<Diagnostic>) {
    let mut in_use = false;
    for i in 0..code.len() {
        let tok = code[i];
        match tok.kind {
            TokenKind::Ident if tok.text == "use" => in_use = true,
            TokenKind::Punct if tok.text == ";" => in_use = false,
            TokenKind::Ident if tok.text == "Instant" || tok.text == "SystemTime" => {
                let construction = is_punct(code, i + 1, ":")
                    && is_punct(code, i + 2, ":")
                    && matches!(ident_at(code, i + 3), Some("now" | "UNIX_EPOCH"));
                if in_use || construction {
                    raw.push(Diagnostic {
                        file: file.to_string(),
                        line: tok.line,
                        col: tok.col,
                        rule: RULE_WALL_CLOCK,
                        message: format!(
                            "`{}` reads the wall clock; simulation code must use \
                             `SimTime` (bench/testkit are exempt)",
                            tok.text
                        ),
                    });
                }
            }
            _ => {}
        }
    }
}

const ALLOC_CONSTRUCTS: &[&str] = &[
    "Vec::new",
    "vec![]",
    "to_vec",
    "collect",
    "format!",
    "Box::new",
    "String::from",
];

/// Body token ranges of every fn carrying `#[cfg_attr(simlint, <marker>)]`,
/// as `(fn_name, body_start, body_end)` with the braces excluded.
fn marked_fn_bodies(code: &[&Token], marker: &str) -> Vec<(String, usize, usize)> {
    let mut bodies = Vec::new();
    let mut i = 0;
    while i + 8 < code.len() {
        let is_marker = is_punct(code, i, "#")
            && is_punct(code, i + 1, "[")
            && is_ident(code, i + 2, "cfg_attr")
            && is_punct(code, i + 3, "(")
            && is_ident(code, i + 4, "simlint")
            && is_punct(code, i + 5, ",")
            && is_ident(code, i + 6, marker)
            && is_punct(code, i + 7, ")")
            && is_punct(code, i + 8, "]");
        if !is_marker {
            i += 1;
            continue;
        }
        let mut j = skip_attrs(code, i + 9);
        // Skip visibility and qualifiers up to `fn`.
        let mut guard = 0;
        while !is_ident(code, j, "fn") && j < code.len() && guard < 16 {
            j += 1;
            guard += 1;
        }
        if !is_ident(code, j, "fn") {
            i += 1;
            continue;
        }
        let fn_name = ident_at(code, j + 1).unwrap_or("?").to_string();
        // Body: first `{` outside parentheses (signature) and brackets.
        let mut k = j + 1;
        let mut paren = 0i32;
        while k < code.len() {
            let t = code[k];
            if t.kind == TokenKind::Punct {
                match t.text.as_str() {
                    "(" => paren += 1,
                    ")" => paren -= 1,
                    "{" if paren == 0 => break,
                    ";" if paren == 0 => break, // trait method: no body
                    _ => {}
                }
            }
            k += 1;
        }
        if !is_punct(code, k, "{") {
            i = j + 1;
            continue;
        }
        let end = match_delim(code, k, "{", "}");
        bodies.push((fn_name, k + 1, end));
        i = end + 1;
    }
    bodies
}

fn rule_hot_path_alloc(file: &str, code: &[&Token], raw: &mut Vec<Diagnostic>) {
    for (fn_name, start, end) in marked_fn_bodies(code, "hot_path") {
        scan_alloc_constructs(file, code, start, end, &fn_name, raw);
    }
}

fn rule_pure_model_effect(file: &str, code: &[&Token], raw: &mut Vec<Diagnostic>) {
    for (fn_name, start, end) in marked_fn_bodies(code, "pure_model") {
        scan_effect_constructs(file, code, start, end, &fn_name, raw);
    }
}

/// Shard-merge paths must be map-free: even a seeded/deterministic hasher
/// invites order-dependent iteration, and the merged event order must be
/// a pure function of `(time, seq)` for any shard count.
fn rule_shard_boundary(file: &str, code: &[&Token], raw: &mut Vec<Diagnostic>) {
    for (fn_name, start, end) in marked_fn_bodies(code, "shard_merge") {
        for i in start..end.min(code.len()) {
            let Some(name) = ident_at(code, i) else {
                continue;
            };
            if name != "HashMap" && name != "HashSet" {
                continue;
            }
            let tok = code[i];
            raw.push(Diagnostic {
                file: file.to_string(),
                line: tok.line,
                col: tok.col,
                rule: RULE_SHARD_BOUNDARY,
                message: format!(
                    "`{name}` inside shard-merge fn `{fn_name}`: cross-shard \
                     routing and merging must never depend on hash-map \
                     iteration order — the merged event order is a pure \
                     function of (time, seq)"
                ),
            });
        }
    }
}

/// Epoch-shard drains run concurrently, one per shard, between two
/// barriers; inside them every global effect is a data race or a
/// determinism leak. Banned: `Medium` mutation (deferred transmissions
/// belong to the barrier merge), RNG receiver draws (the global stream
/// is single-owner; per-node streams live inside the node models the
/// drain calls into), and any touch of the global `event_seq` counter
/// (shard drains stamp re-arms from their own disjoint
/// `base + j·shards + s` lane).
fn rule_epoch_barrier(file: &str, code: &[&Token], raw: &mut Vec<Diagnostic>) {
    for (fn_name, start, end) in marked_fn_bodies(code, "epoch_shard") {
        for i in start..end.min(code.len()) {
            let Some(name) = ident_at(code, i) else {
                continue;
            };
            let tok = code[i];
            if name == "event_seq" {
                raw.push(Diagnostic {
                    file: file.to_string(),
                    line: tok.line,
                    col: tok.col,
                    rule: RULE_EPOCH_BARRIER,
                    message: format!(
                        "global `event_seq` touched inside epoch-shard fn \
                         `{fn_name}`; shard drains must stamp re-armed events \
                         from their disjoint (base + j*shards + s) lane and let \
                         the barrier advance the global counter"
                    ),
                });
                continue;
            }
            if i == 0 || !is_punct(code, i - 1, ".") || !is_punct(code, i + 1, "(") {
                continue;
            }
            let what = if name == "fork" || name.starts_with("gen_") {
                "draws from an RNG receiver"
            } else if matches!(
                name,
                "begin_transmission"
                    | "begin_transmission_into"
                    | "finish_transmission"
                    | "end_transmission"
            ) {
                "mutates the shared Medium"
            } else {
                continue;
            };
            raw.push(Diagnostic {
                file: file.to_string(),
                line: tok.line,
                col: tok.col,
                rule: RULE_EPOCH_BARRIER,
                message: format!(
                    "`.{name}(...)` {what} inside epoch-shard fn `{fn_name}`; \
                     shard drains run concurrently — buffer the effect and \
                     apply it after the epoch barrier"
                ),
            });
        }
    }
}

/// Serve-loop fns sit between a network peer and the scheduler: the
/// peer chooses how many bytes arrive and when. Three hazards are
/// banned. Whole-stream slurps (`read_to_end`/`read_to_string`) hand
/// the peer an unbounded allocation; frame loops must read
/// length-prefixed payloads and reject lengths over an explicit cap.
/// Buffer growth (`push`/`extend`/`extend_from_slice`/`append`/
/// `resize`) is allowed only when the fn visibly bounds it — some
/// identifier in the body mentioning `MAX`/capacity; otherwise
/// per-frame growth compounds across a session. And wall-clock reads
/// are banned outright: session behavior must be a function of the
/// protocol bytes, so pipe-mode replays and socket sessions behave
/// identically.
fn rule_serve_loop_block(file: &str, code: &[&Token], raw: &mut Vec<Diagnostic>) {
    for (fn_name, start, end) in marked_fn_bodies(code, "serve_loop") {
        let end = end.min(code.len());
        // A bound mention anywhere in the body legitimizes growth calls:
        // `MAX_FRAME_LEN`, `with_capacity`, `queue_capacity`, ...
        let has_bound = (start..end).any(|i| {
            ident_at(code, i).is_some_and(|name| name.contains("MAX") || name.contains("capacity"))
        });
        for i in start..end {
            let Some(name) = ident_at(code, i) else {
                continue;
            };
            let tok = code[i];
            if (name == "Instant" || name == "SystemTime")
                && is_punct(code, i + 1, ":")
                && is_punct(code, i + 2, ":")
                && matches!(ident_at(code, i + 3), Some("now" | "UNIX_EPOCH"))
            {
                raw.push(Diagnostic {
                    file: file.to_string(),
                    line: tok.line,
                    col: tok.col,
                    rule: RULE_SERVE_LOOP,
                    message: format!(
                        "`{name}` wall-clock read inside serve-loop fn `{fn_name}`; \
                         session behavior must be a function of the protocol \
                         bytes, not the host clock",
                        name = tok.text
                    ),
                });
                continue;
            }
            if i == 0 || !is_punct(code, i - 1, ".") || !is_punct(code, i + 1, "(") {
                continue;
            }
            if name == "read_to_end" || name == "read_to_string" {
                raw.push(Diagnostic {
                    file: file.to_string(),
                    line: tok.line,
                    col: tok.col,
                    rule: RULE_SERVE_LOOP,
                    message: format!(
                        "`.{name}(...)` slurps unbounded peer input inside \
                         serve-loop fn `{fn_name}`; read length-prefixed frames \
                         and reject lengths over an explicit cap"
                    ),
                });
                continue;
            }
            if matches!(
                name,
                "push" | "extend" | "extend_from_slice" | "append" | "resize"
            ) && !has_bound
            {
                raw.push(Diagnostic {
                    file: file.to_string(),
                    line: tok.line,
                    col: tok.col,
                    rule: RULE_SERVE_LOOP,
                    message: format!(
                        "`.{name}(...)` grows a buffer inside serve-loop fn \
                         `{fn_name}` with no visible bound (no MAX_*/capacity \
                         mention in the fn); peer-driven growth must be capped"
                    ),
                });
            }
        }
    }
}

/// Method calls that make a function effectful: RNG draws, event-queue
/// scheduling/cancellation, and `Medium` mutation. The scan looks for
/// `.name(` receivers, so type paths and doc text never fire.
fn scan_effect_constructs(
    file: &str,
    code: &[&Token],
    start: usize,
    end: usize,
    fn_name: &str,
    raw: &mut Vec<Diagnostic>,
) {
    for i in start..end.min(code.len()) {
        let Some(name) = ident_at(code, i) else {
            continue;
        };
        if i == 0 || !is_punct(code, i - 1, ".") || !is_punct(code, i + 1, "(") {
            continue;
        }
        let what = if name == "fork" || name.starts_with("gen_") {
            "an RNG draw"
        } else if name == "schedule" || name == "cancel" {
            "an event-queue mutation"
        } else if name == "begin_transmission" || name == "finish_transmission" {
            "a Medium mutation"
        } else {
            continue;
        };
        let tok = code[i];
        raw.push(Diagnostic {
            file: file.to_string(),
            line: tok.line,
            col: tok.col,
            rule: RULE_PURE_MODEL,
            message: format!(
                "`.{name}(...)` is {what} inside pure-model fn `{fn_name}`; \
                 every effect must flow through the dispatcher so recorded \
                 traces replay through the pure models alone"
            ),
        });
    }
}

fn scan_alloc_constructs(
    file: &str,
    code: &[&Token],
    start: usize,
    end: usize,
    fn_name: &str,
    raw: &mut Vec<Diagnostic>,
) {
    let mut push = |tok: &Token, construct: &str| {
        raw.push(Diagnostic {
            file: file.to_string(),
            line: tok.line,
            col: tok.col,
            rule: RULE_HOT_PATH,
            message: format!(
                "allocating construct `{construct}` inside hot-path fn \
                 `{fn_name}` (banned: {})",
                ALLOC_CONSTRUCTS.join(", ")
            ),
        });
    };
    for i in start..end.min(code.len()) {
        let Some(name) = ident_at(code, i) else {
            continue;
        };
        let tok = code[i];
        let path_new = |what: &str| {
            name == what
                && is_punct(code, i + 1, ":")
                && is_punct(code, i + 2, ":")
                && is_ident(code, i + 3, "new")
        };
        if path_new("Vec") {
            push(tok, "Vec::new");
        } else if path_new("Box") {
            push(tok, "Box::new");
        } else if name == "String"
            && is_punct(code, i + 1, ":")
            && is_punct(code, i + 2, ":")
            && is_ident(code, i + 3, "from")
        {
            push(tok, "String::from");
        } else if (name == "vec" || name == "format") && is_punct(code, i + 1, "!") {
            push(tok, if name == "vec" { "vec![]" } else { "format!" });
        } else if (name == "to_vec" || name == "collect") && i > 0 && is_punct(code, i - 1, ".") {
            push(tok, name);
        }
    }
}

fn rule_float_event_key(
    file: &str,
    code: &[&Token],
    in_test: &dyn Fn(usize) -> bool,
    raw: &mut Vec<Diagnostic>,
) {
    let mut i = 0;
    while i + 3 < code.len() {
        let is_derive = is_punct(code, i, "#")
            && is_punct(code, i + 1, "[")
            && is_ident(code, i + 2, "derive")
            && is_punct(code, i + 3, "(");
        if !is_derive || in_test(i) {
            i += 1;
            continue;
        }
        let close_paren = match_delim(code, i + 3, "(", ")");
        let ordered =
            (i + 4..close_paren).any(|k| matches!(ident_at(code, k), Some("Ord" | "PartialOrd")));
        let attr_end = match_delim(code, i + 1, "[", "]");
        if !ordered {
            i = attr_end + 1;
            continue;
        }
        let mut j = skip_attrs(code, attr_end + 1);
        // Skip visibility (`pub`, `pub(crate)`).
        while matches!(
            ident_at(code, j),
            Some("pub" | "crate" | "in" | "super" | "self")
        ) || is_punct(code, j, "(")
            || is_punct(code, j, ")")
        {
            j += 1;
        }
        let keyword = ident_at(code, j);
        if !matches!(keyword, Some("struct" | "enum")) {
            i = attr_end + 1;
            continue;
        }
        let type_name = ident_at(code, j + 1).unwrap_or("?").to_string();
        // Find the item body: `{...}`, `(...);`, or a bare `;`.
        let mut k = j + 2;
        let body_range = loop {
            if k >= code.len() {
                break None;
            }
            if is_punct(code, k, "<") {
                let (_, close) = generic_args(code, k);
                k = close + 1;
                continue;
            }
            if is_punct(code, k, "{") {
                break Some((k + 1, match_delim(code, k, "{", "}")));
            }
            if is_punct(code, k, "(") {
                break Some((k + 1, match_delim(code, k, "(", ")")));
            }
            if is_punct(code, k, ";") {
                break None;
            }
            k += 1;
        };
        if let Some((lo, hi)) = body_range {
            for f in lo..hi.min(code.len()) {
                if matches!(ident_at(code, f), Some("f32" | "f64")) {
                    let tok = code[f];
                    raw.push(Diagnostic {
                        file: file.to_string(),
                        line: tok.line,
                        col: tok.col,
                        rule: RULE_FLOAT_KEY,
                        message: format!(
                            "`{}` field in `{type_name}`, which derives an ordering: \
                             floats must never key the event queue (NaN breaks \
                             total order; rounding breaks replay)",
                            tok.text
                        ),
                    });
                }
            }
            i = hi.max(attr_end) + 1;
        } else {
            i = attr_end + 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint_sim(source: &str) -> Vec<Diagnostic> {
        let mut linter = Linter::new(ForkRegistry::default());
        linter.lint_file("test.rs", source, &CrateContext::fixture());
        linter.finish(false);
        linter.diagnostics
    }

    #[test]
    fn default_hashmap_fires_and_custom_hasher_passes() {
        let diags = lint_sim(
            "type A = HashMap<u32, u32>;\n\
             type B = HashMap<u32, u32, BuildHasherDefault<H>>;\n\
             type C = HashSet<u64, BuildHasherDefault<H>>;\n\
             fn f() { let m: HashSet<u8> = HashSet::new(); }\n",
        );
        let fired: Vec<u32> = diags
            .iter()
            .filter(|d| d.rule == RULE_NONDET_ITER)
            .map(|d| d.line)
            .collect();
        assert_eq!(fired, vec![1, 4, 4]);
    }

    #[test]
    fn tuple_keys_do_not_inflate_arity() {
        let diags = lint_sim("type A = HashMap<(u32, u32), V>;\n");
        assert_eq!(diags.len(), 1, "{diags:?}");
    }

    #[test]
    fn strings_and_comments_never_fire() {
        let diags = lint_sim(
            "// HashMap::new() in a comment\n\
             const S: &str = \"HashMap::new() Instant::now()\";\n",
        );
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn wall_clock_fires_on_import_and_now() {
        let diags = lint_sim(
            "use std::time::Instant;\n\
             fn f() { let t = Instant::now(); let x: Option<Instant> = None; }\n",
        );
        let wall: Vec<u32> = diags
            .iter()
            .filter(|d| d.rule == RULE_WALL_CLOCK)
            .map(|d| d.line)
            .collect();
        // The import and the ::now() read fire; the type position does not.
        assert_eq!(wall, vec![1, 2]);
    }

    #[test]
    fn allow_suppresses_exactly_one() {
        let diags = lint_sim(
            "// simlint: allow(nondeterministic-iteration)\n\
             fn f() { let a = HashMap::<u32, u32>::new(); }\n\
             fn g() { let b: HashMap<u32, u32> = make(); }\n",
        );
        let fired: Vec<u32> = diags
            .iter()
            .filter(|d| d.rule == RULE_NONDET_ITER)
            .map(|d| d.line)
            .collect();
        assert_eq!(fired, vec![3], "only the un-allowed site remains");
    }

    #[test]
    fn unknown_rule_is_an_error() {
        let diags = lint_sim("// simlint: allow(no-such-rule)\n");
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, RULE_UNKNOWN);
    }

    #[test]
    fn hot_path_alloc_scans_only_annotated_fns() {
        let diags = lint_sim(
            "fn cold() { let v = vec![1]; }\n\
             #[cfg_attr(simlint, hot_path)]\n\
             fn hot(xs: &[u32]) -> Vec<u32> {\n\
                 let v: Vec<u32> = xs.iter().copied().collect();\n\
                 let s = format!(\"{v:?}\");\n\
                 v\n\
             }\n",
        );
        let hot: Vec<u32> = diags
            .iter()
            .filter(|d| d.rule == RULE_HOT_PATH)
            .map(|d| d.line)
            .collect();
        assert_eq!(hot, vec![4, 5]);
    }

    #[test]
    fn pure_model_effects_fire_only_in_annotated_fns() {
        let diags = lint_sim(
            "fn dispatcher(&mut self) { let r = self.rng.gen_unit_f64(); }\n\
             #[cfg_attr(simlint, pure_model)]\n\
             fn step(&mut self, q: &mut Q, m: &mut Medium) {\n\
                 let r = self.rng.gen_unit_f64();\n\
                 let s = self.rng.fork(3);\n\
                 let k = q.schedule(t, e);\n\
                 q.cancel(k);\n\
                 m.begin_transmission(n, now, airtime);\n\
                 self.tables.push(t);\n\
             }\n",
        );
        let fired: Vec<u32> = diags
            .iter()
            .filter(|d| d.rule == RULE_PURE_MODEL)
            .map(|d| d.line)
            .collect();
        assert_eq!(fired, vec![4, 5, 6, 7, 8]);
        // fork(3) inside the body also trips fork discipline separately;
        // the pure-model rule itself must not fire outside the marker.
        assert!(diags
            .iter()
            .all(|d| d.rule != RULE_PURE_MODEL || d.line >= 4));
    }

    #[test]
    fn epoch_barrier_fires_only_in_annotated_fns() {
        let diags = lint_sim(
            "fn barrier(&mut self) { self.event_seq += 1; self.medium.begin_transmission(n, t); }\n\
             #[cfg_attr(simlint, epoch_shard)]\n\
             fn drain(&mut self, q: &mut Q, m: &mut Medium) {\n\
                 let r = self.rng.gen_unit_f64();\n\
                 self.event_seq += 1;\n\
                 m.begin_transmission_into(n, now, airtime);\n\
                 q.schedule_seq(t, s, e);\n\
                 q.cancel(k);\n\
             }\n",
        );
        let fired: Vec<u32> = diags
            .iter()
            .filter(|d| d.rule == RULE_EPOCH_BARRIER)
            .map(|d| d.line)
            .collect();
        // RNG draw, global counter, Medium mutation fire; the shard's own
        // queue operations (schedule_seq/cancel) are the drain's job.
        assert_eq!(fired, vec![4, 5, 6]);
    }

    #[test]
    fn serve_loop_fires_on_slurps_growth_and_wall_clock() {
        let diags = lint_sim(
            "fn anywhere(&mut self) { self.buf.read_to_end(&mut v); }\n\
             #[cfg_attr(simlint, serve_loop)]\n\
             fn session(&mut self, input: &mut R) {\n\
                 input.read_to_end(&mut self.buf);\n\
                 input.read_to_string(&mut self.text);\n\
                 self.frames.push(frame);\n\
                 let t = Instant::now();\n\
             }\n",
        );
        let fired: Vec<u32> = diags
            .iter()
            .filter(|d| d.rule == RULE_SERVE_LOOP)
            .map(|d| d.line)
            .collect();
        assert_eq!(fired, vec![4, 5, 6, 7], "unmarked fns never fire");
    }

    #[test]
    fn serve_loop_growth_passes_with_a_visible_bound() {
        let diags = lint_sim(
            "#[cfg_attr(simlint, serve_loop)]\n\
             fn read_frame(&mut self) {\n\
                 if len > MAX_FRAME_LEN { return Err(too_big(len)); }\n\
                 self.buf.resize(len, 0);\n\
                 self.frames.push(frame);\n\
             }\n\
             #[cfg_attr(simlint, serve_loop)]\n\
             fn admit(&mut self, jobs: Vec<Job>) {\n\
                 let mut out = Vec::with_capacity(jobs.len());\n\
                 out.extend(jobs);\n\
             }\n",
        );
        assert!(diags.iter().all(|d| d.rule != RULE_SERVE_LOOP), "{diags:?}");
    }

    #[test]
    fn float_event_key_fires_on_ordered_types_only() {
        let diags = lint_sim(
            "#[derive(PartialOrd, PartialEq)]\n\
             struct Bad { t: f64 }\n\
             #[derive(Clone)]\n\
             struct Fine { t: f64 }\n\
             #[derive(Ord, PartialOrd, Eq, PartialEq)]\n\
             struct Good(u64);\n",
        );
        let float: Vec<u32> = diags
            .iter()
            .filter(|d| d.rule == RULE_FLOAT_KEY)
            .map(|d| d.line)
            .collect();
        assert_eq!(float, vec![2]);
    }

    #[test]
    fn fork_literals_must_be_registered_and_unique() {
        let registry = ForkRegistry::parse("R.md", "| fixture | 4 | x |\n");
        let mut linter = Linter::new(registry);
        linter.lint_file(
            "a.rs",
            "fn f(r: &SimRng) { let a = r.fork(4); let b = r.fork(4); let c = r.fork(9); }\n",
            &CrateContext::fixture(),
        );
        linter.finish(false);
        let fork: Vec<String> = linter
            .diagnostics
            .iter()
            .filter(|d| d.rule == RULE_FORK)
            .map(|d| d.message.clone())
            .collect();
        assert_eq!(fork.len(), 2, "{fork:?}");
        assert!(fork.iter().any(|m| m.contains("collides")));
        assert!(fork.iter().any(|m| m.contains("not registered")));
    }

    #[test]
    fn stale_registry_rows_fail_workspace_runs() {
        let registry = ForkRegistry::parse("R.md", "| fixture | 4 | x |\n| fixture | 5 | y |\n");
        let mut linter = Linter::new(registry);
        linter.lint_file(
            "a.rs",
            "fn f(r: &SimRng) { let a = r.fork(4); }\n",
            &CrateContext::fixture(),
        );
        linter.finish(true);
        assert_eq!(linter.diagnostics.len(), 1);
        assert!(linter.diagnostics[0]
            .message
            .contains("no literal call site"));
        assert_eq!(linter.diagnostics[0].file, "R.md");
    }

    #[test]
    fn cfg_test_modules_are_exempt_from_fork_discipline() {
        let diags = lint_sim(
            "#[cfg(test)]\n\
             mod tests {\n\
                 fn f(r: &SimRng) { let a = r.fork(123); }\n\
             }\n",
        );
        assert!(diags.is_empty(), "{diags:?}");
    }
}
