//! MCMP wire-format properties, on the in-tree harness: arbitrary frame
//! sequences survive a writer→reader roundtrip exactly, truncating a
//! stream anywhere yields only a prefix of what was written (never an
//! invented frame), and no byte string — however corrupt — can panic
//! the decoder or silently decode back to the frame it corrupted.

use manet_campaign::{CampaignCounts, Frame, FrameReader, FrameWriter, JobEnvelope};
use manet_testkit::{prop_check, Gen};

/// Mix of ASCII, whitespace, and multi-byte UTF-8 so string fields
/// exercise non-trivial encodings.
const ALPHABET: &[char] = &['a', 'B', '0', '_', '-', '.', ' ', '\n', '"', 'π', '雪', '🛰'];

fn gen_string(g: &mut Gen, max: usize) -> String {
    g.vec(0..max, |g| ALPHABET[g.usize_in(0..ALPHABET.len())])
        .into_iter()
        .collect()
}

fn gen_bytes(g: &mut Gen, max: usize) -> Vec<u8> {
    g.vec(0..max, |g| g.u32_in(0..256) as u8)
}

fn gen_envelope(g: &mut Gen) -> JobEnvelope {
    JobEnvelope {
        label: gen_string(g, 12),
        scheme: gen_string(g, 12),
        map_units: g.u32_in(0..10),
        hosts: g.u32_in(0..200),
        broadcasts: g.u32_in(0..50),
        seed: g.u64(),
        repeats: g.u32_in(0..8),
        scenario: if g.bool() {
            Some(gen_string(g, 40))
        } else {
            None
        },
    }
}

fn gen_counts(g: &mut Gen) -> CampaignCounts {
    CampaignCounts {
        total: g.u64(),
        completed: g.u64(),
        cancelled: g.u64(),
        failed: g.u64(),
    }
}

fn gen_frame(g: &mut Gen) -> Frame {
    match g.usize_in(0..9) {
        0 => Frame::Submit {
            name: gen_string(g, 16),
            jobs: g.vec(0..5, gen_envelope),
        },
        1 => Frame::Accepted {
            campaign: g.u64(),
            jobs: g.u64(),
        },
        2 => Frame::Rejected {
            name: gen_string(g, 16),
            reason: gen_string(g, 32),
        },
        3 => Frame::Progress {
            campaign: g.u64(),
            counts: gen_counts(g),
        },
        4 => Frame::JobMetrics {
            campaign: g.u64(),
            job: g.u64(),
            label: gen_string(g, 12),
            payload: gen_bytes(g, 64),
        },
        5 => Frame::JobFailed {
            campaign: g.u64(),
            job: g.u64(),
            label: gen_string(g, 12),
            reason: gen_string(g, 32),
        },
        6 => Frame::Summary {
            campaign: g.u64(),
            counts: gen_counts(g),
        },
        7 => Frame::Cancel { campaign: g.u64() },
        _ => Frame::Shutdown,
    }
}

fn encode_stream(frames: &[Frame]) -> Vec<u8> {
    let mut writer = FrameWriter::new(Vec::new()).expect("header write");
    for frame in frames {
        writer.write(frame).expect("frame write");
    }
    writer.into_inner()
}

prop_check! {
    /// Any frame sequence roundtrips through a full stream and ends with
    /// a clean EOF.
    fn frame_sequences_roundtrip(g, cases = 128) {
        let frames = g.vec(1..6, gen_frame);
        let bytes = encode_stream(&frames);
        let mut reader = FrameReader::new(&bytes[..]).expect("stream header");
        for expected in &frames {
            assert_eq!(reader.read().expect("read frame").as_ref(), Some(expected));
        }
        assert_eq!(reader.read().expect("trailing read"), None, "clean EOF");
    }

    /// Truncating a stream at any byte yields a (possibly empty) prefix
    /// of the written frames followed by an error, or a clean EOF only
    /// when the cut falls exactly on a frame boundary — never a frame
    /// that was not written.
    fn truncation_never_invents_frames(g, cases = 256) {
        let frames = g.vec(1..5, gen_frame);
        let bytes = encode_stream(&frames);
        let cut = g.usize_in(0..bytes.len());
        let mut decoded = Vec::new();
        let mut clean_eof = false;
        match FrameReader::new(&bytes[..cut]) {
            Err(_) => assert!(cut < 8, "only a cut inside the 8-byte header may fail it"),
            Ok(mut reader) => loop {
                match reader.read() {
                    Ok(Some(frame)) => decoded.push(frame),
                    Ok(None) => {
                        clean_eof = true;
                        break;
                    }
                    Err(_) => break,
                }
            },
        }
        assert!(decoded.len() < frames.len(), "a strict cut loses at least the last frame");
        assert_eq!(&frames[..decoded.len()], &decoded[..], "decoded frames are a prefix");
        if clean_eof {
            // A clean EOF means the cut landed exactly where frame
            // `decoded.len() + 1` would have started.
            let boundary = encode_stream(&frames[..decoded.len()]).len();
            assert_eq!(cut, boundary, "clean EOF only at a frame boundary");
        }
    }

    /// The payload decoder never panics, whatever bytes it is fed.
    fn arbitrary_payloads_never_panic_the_decoder(g) {
        let payload = gen_bytes(g, 200);
        let _ = Frame::decode(&payload);
    }

    /// Corruption is never silent: the encoding is canonical (fixed-width
    /// integers, strict bools, exact lengths, no trailing bytes), so a
    /// payload with one byte changed can never decode back to the frame
    /// that produced it.
    fn single_byte_corruption_is_never_silent(g, cases = 256) {
        let frame = gen_frame(g);
        let mut enc = manet_sim_engine::WireEncoder::new();
        frame.encode(&mut enc);
        let mut payload = enc.into_bytes();
        let at = g.usize_in(0..payload.len());
        let delta = g.u32_in(1..256) as u8;
        payload[at] = payload[at].wrapping_add(delta);
        match Frame::decode(&payload) {
            Err(_) => {}
            Ok(decoded) => assert_ne!(decoded, frame, "corrupt payload decoded as the original"),
        }
    }
}
