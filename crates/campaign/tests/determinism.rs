//! Placement invariance: a 50-job campaign streams per-job metrics that
//! are byte-identical whatever the worker count, and identical to what
//! the one-shot CLI pipeline produces for the same parameters. This is
//! the contract that makes the campaign server a cache-friendly batch
//! front-end rather than a new source of nondeterminism.

use std::collections::BTreeMap;
use std::sync::Mutex;

use broadcast_core::{CancelToken, SchemeSpec, SimConfig, World};
use manet_campaign::{run_campaign, Frame, FrameReader, FrameWriter, JobEnvelope, QueuedCampaign};
use manet_sim_engine::WorkerPool;

const SCHEMES: &[&str] = &["flooding", "counter:3", "distance:250", "ac", "al", "nc"];

/// Fifty small jobs cycling through every scheme, with varying seeds and
/// an occasional multi-repeat job.
fn fifty_jobs() -> Vec<JobEnvelope> {
    (0..50u64)
        .map(|i| JobEnvelope {
            label: format!("job{i:02}"),
            scheme: SCHEMES[(i as usize) % SCHEMES.len()].to_string(),
            map_units: 1,
            hosts: 10,
            broadcasts: 2,
            seed: 100 + i,
            repeats: if i % 10 == 0 { 2 } else { 1 },
            scenario: None,
        })
        .collect()
}

/// Runs the campaign on a pool of `workers` threads and returns
/// label → streamed metrics bytes, asserting every job completed.
fn run_with_workers(jobs: &[JobEnvelope], workers: usize) -> BTreeMap<String, Vec<u8>> {
    let campaign = QueuedCampaign {
        id: 1,
        name: "determinism".into(),
        jobs: jobs.to_vec(),
        cancel: CancelToken::new(),
    };
    let pool = WorkerPool::new(workers);
    let writer = Mutex::new(FrameWriter::new(Vec::new()).expect("header"));
    let counts = run_campaign(&campaign, &pool, &writer).expect("run campaign");
    assert_eq!(counts.completed, jobs.len() as u64, "{workers} workers");
    assert_eq!(counts.failed, 0);
    assert_eq!(counts.cancelled, 0);

    let bytes = writer
        .into_inner()
        .unwrap_or_else(|e| e.into_inner())
        .into_inner();
    let mut reader = FrameReader::new(&bytes[..]).expect("stream header");
    let mut metrics = BTreeMap::new();
    while let Some(frame) = reader.read().expect("read frame") {
        if let Frame::JobMetrics { label, payload, .. } = frame {
            let duplicate = metrics.insert(label.clone(), payload);
            assert!(duplicate.is_none(), "label {label} streamed twice");
        }
    }
    assert_eq!(metrics.len(), jobs.len());
    metrics
}

/// The one-shot pipeline for one envelope: the same config construction
/// and the same metrics rendering `manet-sim --metrics` uses.
fn one_shot_metrics(job: &JobEnvelope) -> Vec<u8> {
    let scheme = SchemeSpec::parse(&job.scheme).expect("scheme");
    let reports: Vec<_> = (job.seed..job.seed + u64::from(job.repeats))
        .map(|seed| {
            let config = SimConfig::builder(job.map_units, scheme.clone())
                .hosts(job.hosts)
                .broadcasts(job.broadcasts)
                .seed(seed)
                .build();
            World::new(config).run()
        })
        .collect();
    let record = manet_experiments::metrics_record(&reports);
    manet_experiments::render_metrics_json("single", &[("manet-sim".to_string(), vec![record])])
        .into_bytes()
}

/// The tentpole guarantee: per-job metrics are byte-identical across
/// worker counts 0 (inline), 1, and 3, and equal to the one-shot
/// pipeline's output for every one of the 50 jobs.
#[test]
fn fifty_job_campaign_is_placement_invariant() {
    let jobs = fifty_jobs();
    let inline = run_with_workers(&jobs, 0);
    let single = run_with_workers(&jobs, 1);
    let three = run_with_workers(&jobs, 3);
    assert_eq!(inline, single, "0 vs 1 workers");
    assert_eq!(inline, three, "0 vs 3 workers");
    for job in &jobs {
        assert_eq!(
            inline[&job.label],
            one_shot_metrics(job),
            "{} drifted from the one-shot pipeline",
            job.label
        );
    }
}
