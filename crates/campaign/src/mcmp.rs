//! `MCMP` v1 — the campaign server's binary stream format.
//!
//! Both directions of a campaign session speak the same framing: the
//! stream opens with the 4-byte magic `MCMP` plus a `u32` version
//! (exactly the [`WireEncoder::with_magic`] header the snapshot and
//! trace formats use), followed by length-prefixed frames. Each frame is
//! a `u32` payload length followed by that many payload bytes; the
//! payload's first byte is the frame kind tag, the rest its fields in
//! [`WireEncoder`] primitives. There is no per-frame re-serialization of
//! whole reports: progress ticks are a handful of fixed-width integers,
//! and per-job metrics ride as opaque length-prefixed bytes — the exact
//! `manet-broadcast-metrics/1` document the one-shot CLI would have
//! written, so a streamed job result is byte-comparable (`cmp`) with its
//! one-shot counterpart.
//!
//! Client-to-server frames: [`Frame::Submit`], [`Frame::Cancel`],
//! [`Frame::Shutdown`]. Server-to-client frames: [`Frame::Accepted`],
//! [`Frame::Rejected`], [`Frame::Progress`], [`Frame::JobMetrics`],
//! [`Frame::JobFailed`], [`Frame::Summary`]. Frames are strictly sized:
//! trailing bytes after a frame's last field are a decode error, and a
//! declared length the transport cannot deliver (truncation) surfaces as
//! an I/O error.

use std::io::{self, Read, Write};

use manet_sim_engine::{WireDecoder, WireEncoder, WireError};

/// Stream magic, the first four bytes in each direction.
pub const MCMP_MAGIC: &[u8; 4] = b"MCMP";
/// Format version following the magic.
pub const MCMP_VERSION: u32 = 1;

/// Upper bound on a single frame's payload, enforced on both encode and
/// decode. A submit of [`manet_scenario::MAX_CAMPAIGN_JOBS`] minimal
/// envelopes fits comfortably; anything larger is a protocol error, not
/// an allocation.
pub const MAX_FRAME_LEN: usize = 256 << 20;

/// One queued simulation job as it crosses the wire: the resolved
/// [`JobSpec`](manet_scenario::JobSpec) fields with any scenario script
/// inlined as text, so the server never reads the submitter's
/// filesystem.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobEnvelope {
    /// Unique filename-safe label within the campaign.
    pub label: String,
    /// Scheme string in the `manet-sim --scheme` grammar.
    pub scheme: String,
    /// Square map side in 500 m units.
    pub map_units: u32,
    /// Number of hosts.
    pub hosts: u32,
    /// Broadcast requests to issue.
    pub broadcasts: u32,
    /// Root RNG seed (first of `repeats` consecutive seeds).
    pub seed: u64,
    /// Independent repetitions averaged into one metrics record.
    pub repeats: u32,
    /// Inlined `manet-scenario/1` script text, if the job has one.
    pub scenario: Option<String>,
}

impl JobEnvelope {
    fn encode(&self, enc: &mut WireEncoder) {
        enc.str(&self.label);
        enc.str(&self.scheme);
        enc.u32(self.map_units);
        enc.u32(self.hosts);
        enc.u32(self.broadcasts);
        enc.u64(self.seed);
        enc.u32(self.repeats);
        match &self.scenario {
            Some(text) => {
                enc.bool(true);
                enc.str(text);
            }
            None => enc.bool(false),
        }
    }

    fn decode(dec: &mut WireDecoder<'_>) -> Result<JobEnvelope, WireError> {
        Ok(JobEnvelope {
            label: dec.str()?.to_string(),
            scheme: dec.str()?.to_string(),
            map_units: dec.u32()?,
            hosts: dec.u32()?,
            broadcasts: dec.u32()?,
            seed: dec.u64()?,
            repeats: dec.u32()?,
            scenario: if dec.bool()? {
                Some(dec.str()?.to_string())
            } else {
                None
            },
        })
    }
}

/// Campaign completion counters, shared by progress ticks and the final
/// summary. The invariant `completed + cancelled + failed <= total`
/// holds on every tick and becomes equality on the summary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CampaignCounts {
    /// Jobs in the campaign.
    pub total: u64,
    /// Jobs that finished and streamed their metrics.
    pub completed: u64,
    /// Jobs abandoned by a cancel (drained in-flight or never started).
    pub cancelled: u64,
    /// Jobs rejected at run time (bad scheme string, bad scenario).
    pub failed: u64,
}

impl CampaignCounts {
    fn encode(&self, enc: &mut WireEncoder) {
        enc.u64(self.total);
        enc.u64(self.completed);
        enc.u64(self.cancelled);
        enc.u64(self.failed);
    }

    fn decode(dec: &mut WireDecoder<'_>) -> Result<CampaignCounts, WireError> {
        Ok(CampaignCounts {
            total: dec.u64()?,
            completed: dec.u64()?,
            cancelled: dec.u64()?,
            failed: dec.u64()?,
        })
    }
}

/// One MCMP frame; see the module docs for the session grammar.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// Client → server: queue a named campaign of jobs.
    Submit {
        /// Campaign name (echoed in [`Frame::Rejected`]).
        name: String,
        /// The jobs, in submission order.
        jobs: Vec<JobEnvelope>,
    },
    /// Server → client: the campaign was queued under `campaign`.
    Accepted {
        /// Server-assigned campaign id, the key every later frame carries.
        campaign: u64,
        /// Number of jobs accepted.
        jobs: u64,
    },
    /// Server → client: the submit was refused (queue full, invalid
    /// envelope); nothing was queued.
    Rejected {
        /// Echo of the submitted campaign name.
        name: String,
        /// Human-readable refusal reason.
        reason: String,
    },
    /// Server → client: completion counters after a job finished.
    Progress {
        /// Campaign id from [`Frame::Accepted`].
        campaign: u64,
        /// Current counters.
        counts: CampaignCounts,
    },
    /// Server → client: one job's full metrics document.
    JobMetrics {
        /// Campaign id from [`Frame::Accepted`].
        campaign: u64,
        /// Zero-based job index within the campaign.
        job: u64,
        /// The job's label.
        label: String,
        /// The `manet-broadcast-metrics/1` JSON bytes, exactly as the
        /// one-shot CLI would write them.
        payload: Vec<u8>,
    },
    /// Server → client: one job could not run.
    JobFailed {
        /// Campaign id from [`Frame::Accepted`].
        campaign: u64,
        /// Zero-based job index within the campaign.
        job: u64,
        /// The job's label.
        label: String,
        /// What went wrong.
        reason: String,
    },
    /// Server → client: the campaign is finished (all jobs accounted
    /// for); the last frame a campaign emits.
    Summary {
        /// Campaign id from [`Frame::Accepted`].
        campaign: u64,
        /// Final counters (`completed + cancelled + failed == total`).
        counts: CampaignCounts,
    },
    /// Client → server: stop the campaign. Completed jobs stay flushed;
    /// in-flight jobs drain at their next pause boundary; queued jobs
    /// never start.
    Cancel {
        /// Campaign id from [`Frame::Accepted`].
        campaign: u64,
    },
    /// Client → server: no more submissions; exit once the queue drains.
    Shutdown,
}

const TAG_SUBMIT: u8 = 1;
const TAG_ACCEPTED: u8 = 2;
const TAG_REJECTED: u8 = 3;
const TAG_PROGRESS: u8 = 4;
const TAG_JOB_METRICS: u8 = 5;
const TAG_JOB_FAILED: u8 = 6;
const TAG_SUMMARY: u8 = 7;
const TAG_CANCEL: u8 = 8;
const TAG_SHUTDOWN: u8 = 9;

impl Frame {
    /// Encodes the frame payload (kind tag + fields, no length prefix)
    /// into `enc`.
    pub fn encode(&self, enc: &mut WireEncoder) {
        match self {
            Frame::Submit { name, jobs } => {
                enc.u8(TAG_SUBMIT);
                enc.str(name);
                enc.len(jobs.len());
                for job in jobs {
                    job.encode(enc);
                }
            }
            Frame::Accepted { campaign, jobs } => {
                enc.u8(TAG_ACCEPTED);
                enc.u64(*campaign);
                enc.u64(*jobs);
            }
            Frame::Rejected { name, reason } => {
                enc.u8(TAG_REJECTED);
                enc.str(name);
                enc.str(reason);
            }
            Frame::Progress { campaign, counts } => {
                enc.u8(TAG_PROGRESS);
                enc.u64(*campaign);
                counts.encode(enc);
            }
            Frame::JobMetrics {
                campaign,
                job,
                label,
                payload,
            } => {
                enc.u8(TAG_JOB_METRICS);
                enc.u64(*campaign);
                enc.u64(*job);
                enc.str(label);
                enc.bytes(payload);
            }
            Frame::JobFailed {
                campaign,
                job,
                label,
                reason,
            } => {
                enc.u8(TAG_JOB_FAILED);
                enc.u64(*campaign);
                enc.u64(*job);
                enc.str(label);
                enc.str(reason);
            }
            Frame::Summary { campaign, counts } => {
                enc.u8(TAG_SUMMARY);
                enc.u64(*campaign);
                counts.encode(enc);
            }
            Frame::Cancel { campaign } => {
                enc.u8(TAG_CANCEL);
                enc.u64(*campaign);
            }
            Frame::Shutdown => enc.u8(TAG_SHUTDOWN),
        }
    }

    /// Decodes one frame payload produced by [`encode`](Self::encode).
    ///
    /// # Errors
    ///
    /// Returns a positioned [`WireError`] on an unknown tag, a malformed
    /// field, or trailing bytes.
    pub fn decode(payload: &[u8]) -> Result<Frame, WireError> {
        let mut dec = WireDecoder::new(payload);
        let tag_at = dec.position();
        let frame = match dec.u8()? {
            TAG_SUBMIT => {
                let name = dec.str()?.to_string();
                let count = dec.len()?;
                let mut jobs = Vec::with_capacity(count.min(4096));
                for _ in 0..count {
                    jobs.push(JobEnvelope::decode(&mut dec)?);
                }
                Frame::Submit { name, jobs }
            }
            TAG_ACCEPTED => Frame::Accepted {
                campaign: dec.u64()?,
                jobs: dec.u64()?,
            },
            TAG_REJECTED => Frame::Rejected {
                name: dec.str()?.to_string(),
                reason: dec.str()?.to_string(),
            },
            TAG_PROGRESS => Frame::Progress {
                campaign: dec.u64()?,
                counts: CampaignCounts::decode(&mut dec)?,
            },
            TAG_JOB_METRICS => Frame::JobMetrics {
                campaign: dec.u64()?,
                job: dec.u64()?,
                label: dec.str()?.to_string(),
                payload: dec.bytes()?.to_vec(),
            },
            TAG_JOB_FAILED => Frame::JobFailed {
                campaign: dec.u64()?,
                job: dec.u64()?,
                label: dec.str()?.to_string(),
                reason: dec.str()?.to_string(),
            },
            TAG_SUMMARY => Frame::Summary {
                campaign: dec.u64()?,
                counts: CampaignCounts::decode(&mut dec)?,
            },
            TAG_CANCEL => Frame::Cancel {
                campaign: dec.u64()?,
            },
            TAG_SHUTDOWN => Frame::Shutdown,
            _ => {
                return Err(WireError {
                    at: tag_at,
                    what: "unknown MCMP frame tag",
                })
            }
        };
        dec.finish()?;
        Ok(frame)
    }
}

fn invalid(err: WireError) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, format!("MCMP stream: {err}"))
}

/// Writes the per-direction stream header (magic + version).
///
/// # Errors
///
/// Propagates transport errors.
pub fn write_stream_header(w: &mut impl Write) -> io::Result<()> {
    w.write_all(WireEncoder::with_magic(MCMP_MAGIC, MCMP_VERSION).as_slice())
}

/// Reads and checks the per-direction stream header.
///
/// # Errors
///
/// Transport errors, a bad magic, or an unsupported version (as
/// [`io::ErrorKind::InvalidData`]).
pub fn read_stream_header(r: &mut impl Read) -> io::Result<()> {
    let mut header = [0u8; 8];
    r.read_exact(&mut header)?;
    let version = WireDecoder::new(&header)
        .expect_magic(MCMP_MAGIC)
        .map_err(invalid)?;
    if version != MCMP_VERSION {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("unsupported MCMP version {version}"),
        ));
    }
    Ok(())
}

/// Writes the stream header then length-prefixed [`Frame`]s, reusing one
/// encode buffer across frames.
#[derive(Debug)]
pub struct FrameWriter<W: Write> {
    out: W,
    buf: WireEncoder,
}

impl<W: Write> FrameWriter<W> {
    /// Wraps `out`, writing the stream header immediately.
    ///
    /// # Errors
    ///
    /// Propagates transport errors.
    pub fn new(mut out: W) -> io::Result<FrameWriter<W>> {
        write_stream_header(&mut out)?;
        Ok(FrameWriter {
            out,
            buf: WireEncoder::new(),
        })
    }

    /// Writes one frame and flushes the transport, so a streamed result
    /// is visible to the peer as soon as it exists.
    ///
    /// # Errors
    ///
    /// Propagates transport errors; an over-long frame is
    /// [`io::ErrorKind::InvalidData`].
    pub fn write(&mut self, frame: &Frame) -> io::Result<()> {
        self.buf.clear();
        frame.encode(&mut self.buf);
        let payload = self.buf.as_slice();
        if payload.len() > MAX_FRAME_LEN {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("frame of {} bytes exceeds MAX_FRAME_LEN", payload.len()),
            ));
        }
        self.out.write_all(&(payload.len() as u32).to_le_bytes())?;
        self.out.write_all(payload)?;
        self.out.flush()
    }

    /// Unwraps the transport (for tests inspecting the raw bytes).
    pub fn into_inner(self) -> W {
        self.out
    }
}

/// Reads length-prefixed [`Frame`]s written by a [`FrameWriter`],
/// reusing one payload buffer across frames.
#[derive(Debug)]
pub struct FrameReader<R: Read> {
    input: R,
    buf: Vec<u8>,
}

impl<R: Read> FrameReader<R> {
    /// Wraps `input`, reading and checking the stream header
    /// immediately.
    ///
    /// # Errors
    ///
    /// Transport errors or a bad header (see [`read_stream_header`]).
    pub fn new(mut input: R) -> io::Result<FrameReader<R>> {
        read_stream_header(&mut input)?;
        Ok(FrameReader {
            input,
            buf: Vec::new(),
        })
    }

    /// Reads the next frame; `Ok(None)` on a clean end of stream (EOF
    /// exactly at a frame boundary).
    ///
    /// # Errors
    ///
    /// Transport errors, EOF inside a frame, a length over
    /// [`MAX_FRAME_LEN`], or an undecodable payload (as
    /// [`io::ErrorKind::InvalidData`]).
    #[cfg_attr(simlint, serve_loop)]
    pub fn read(&mut self) -> io::Result<Option<Frame>> {
        let mut len_bytes = [0u8; 4];
        if !read_exact_or_eof(&mut self.input, &mut len_bytes)? {
            return Ok(None);
        }
        let len = u32::from_le_bytes(len_bytes) as usize;
        if len == 0 || len > MAX_FRAME_LEN {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("bad MCMP frame length {len}"),
            ));
        }
        // Bounded by the MAX_FRAME_LEN check above: the peer cannot make
        // this buffer grow without bound by lying about the length.
        self.buf.resize(len, 0);
        self.input.read_exact(&mut self.buf)?;
        Frame::decode(&self.buf).map(Some).map_err(invalid)
    }
}

/// Like `read_exact`, but distinguishes clean EOF before the first byte
/// (`Ok(false)`) from EOF mid-buffer (an error).
fn read_exact_or_eof(input: &mut impl Read, buf: &mut [u8]) -> io::Result<bool> {
    let mut filled = 0;
    while filled < buf.len() {
        match input.read(&mut buf[filled..]) {
            Ok(0) if filled == 0 => return Ok(false),
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "EOF inside an MCMP frame",
                ))
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_frames() -> Vec<Frame> {
        vec![
            Frame::Submit {
                name: "bake".into(),
                jobs: vec![JobEnvelope {
                    label: "j0".into(),
                    scheme: "counter:3".into(),
                    map_units: 3,
                    hosts: 40,
                    broadcasts: 20,
                    seed: 7,
                    repeats: 2,
                    scenario: Some("manet-scenario/1\nhosts 40\n".into()),
                }],
            },
            Frame::Accepted {
                campaign: 1,
                jobs: 1,
            },
            Frame::Progress {
                campaign: 1,
                counts: CampaignCounts {
                    total: 1,
                    completed: 1,
                    ..Default::default()
                },
            },
            Frame::JobMetrics {
                campaign: 1,
                job: 0,
                label: "j0".into(),
                payload: br#"{"schema":"manet-broadcast-metrics/1"}"#.to_vec(),
            },
            Frame::Summary {
                campaign: 1,
                counts: CampaignCounts {
                    total: 1,
                    completed: 1,
                    ..Default::default()
                },
            },
            Frame::Cancel { campaign: 1 },
            Frame::Shutdown,
        ]
    }

    #[test]
    fn frames_roundtrip_through_a_stream() {
        let mut writer = FrameWriter::new(Vec::new()).unwrap();
        for frame in sample_frames() {
            writer.write(&frame).unwrap();
        }
        let bytes = writer.into_inner();
        let mut reader = FrameReader::new(&bytes[..]).unwrap();
        for expected in sample_frames() {
            assert_eq!(reader.read().unwrap(), Some(expected));
        }
        assert_eq!(reader.read().unwrap(), None, "clean EOF after last frame");
    }

    #[test]
    fn bad_header_is_rejected() {
        assert!(FrameReader::new(&b"MSNP\x01\x00\x00\x00"[..]).is_err());
        let mut enc = WireEncoder::with_magic(MCMP_MAGIC, 9);
        enc.u8(0);
        let bytes = enc.into_bytes();
        assert!(FrameReader::new(&bytes[..]).is_err(), "future version");
        assert!(FrameReader::new(&b"MC"[..]).is_err(), "truncated header");
    }

    #[test]
    fn truncated_frames_are_io_errors_not_frames() {
        let mut writer = FrameWriter::new(Vec::new()).unwrap();
        writer.write(&Frame::Cancel { campaign: 3 }).unwrap();
        let bytes = writer.into_inner();
        // Cut the stream inside the frame payload and inside the length.
        for cut in [bytes.len() - 1, 10] {
            let mut reader = FrameReader::new(&bytes[..cut]).unwrap();
            let err = reader.read().unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof, "cut at {cut}");
        }
    }

    #[test]
    fn corrupt_payloads_are_rejected_with_position() {
        // Unknown tag.
        let err = Frame::decode(&[0xEE]).unwrap_err();
        assert_eq!(err.what, "unknown MCMP frame tag");
        // Trailing garbage after a valid frame.
        let mut enc = WireEncoder::new();
        Frame::Shutdown.encode(&mut enc);
        enc.u8(0xFF);
        assert!(Frame::decode(enc.as_slice()).is_err());
        // Truncated field inside the payload.
        let mut enc = WireEncoder::new();
        Frame::Cancel { campaign: 77 }.encode(&mut enc);
        let bytes = enc.into_bytes();
        assert!(Frame::decode(&bytes[..bytes.len() - 1]).is_err());
        // Empty payload.
        assert!(Frame::decode(&[]).is_err());
    }

    #[test]
    fn oversized_lengths_are_rejected_without_allocating() {
        let mut bytes = Vec::new();
        write_stream_header(&mut bytes).unwrap();
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        let mut reader = FrameReader::new(&bytes[..]).unwrap();
        let err = reader.read().unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        // Zero-length frames are equally invalid (no kind tag).
        let mut bytes = Vec::new();
        write_stream_header(&mut bytes).unwrap();
        bytes.extend_from_slice(&0u32.to_le_bytes());
        let mut reader = FrameReader::new(&bytes[..]).unwrap();
        assert!(reader.read().is_err());
    }
}
