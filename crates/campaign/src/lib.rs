//! Campaign server for the MANET broadcast simulator.
//!
//! This crate turns the one-shot simulator into a long-running job
//! service: clients submit *campaigns* — named groups of scenario jobs,
//! each a full deterministic simulation — and stream back per-job
//! metrics as they complete. Four layers, one per module:
//!
//! * [`mcmp`] — the `MCMP` v1 binary session protocol: length-prefixed
//!   frames over any byte stream, carrying job envelopes in and
//!   progress ticks / metrics documents out.
//! * [`queue`] — bounded whole-campaign admission with cancellation
//!   tokens that reach both queued and running campaigns.
//! * [`scheduler`] — the work-stealing fan-out over the sim-engine
//!   [`WorkerPool`](manet_sim_engine::WorkerPool); per-job results are
//!   byte-identical to one-shot CLI runs for any worker count.
//! * [`server`] / [`client`] — the session loops behind
//!   `manet-sim serve` and `manet-client`.

pub mod client;
pub mod mcmp;
pub mod queue;
pub mod scheduler;
pub mod server;

pub use client::{load_campaign, run_session, ClientReport, SessionOptions};
pub use mcmp::{
    CampaignCounts, Frame, FrameReader, FrameWriter, JobEnvelope, MAX_FRAME_LEN, MCMP_MAGIC,
    MCMP_VERSION,
};
pub use queue::{CampaignQueue, QueuedCampaign, SubmitError};
pub use scheduler::run_campaign;
pub use server::{serve, ServeSummary, ServerConfig};

#[cfg(unix)]
pub use server::serve_unix;
