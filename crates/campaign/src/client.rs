//! The scripted campaign client.
//!
//! Everything the `manet-client` binary does lives here so it can be
//! exercised in-process: load a `manet-campaign/1` file into wire
//! envelopes (inlining referenced scenario scripts), submit it over an
//! MCMP session, stream progress to stderr, write each job's metrics
//! document to `<out_dir>/<label>.json` as it arrives, and optionally
//! cancel the campaign after a fixed number of results — the CI hook
//! for proving that a mid-campaign cancel drains cleanly with partial
//! results flushed.

use std::collections::BTreeMap;
use std::fs;
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};

use broadcast_core::{Scenario, SchemeSpec};
use manet_scenario::CampaignSpec;

use crate::mcmp::{CampaignCounts, Frame, FrameReader, FrameWriter, JobEnvelope};

/// Client-side session knobs.
#[derive(Debug, Clone)]
pub struct SessionOptions {
    /// Directory receiving one `<label>.json` per completed job.
    pub out_dir: PathBuf,
    /// Send a `Cancel` after this many job results have arrived.
    pub cancel_after: Option<u64>,
    /// Suppress per-frame progress on stderr.
    pub quiet: bool,
}

/// What a finished session saw, for exit codes and CI assertions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClientReport {
    /// Server-assigned campaign id.
    pub campaign: u64,
    /// The server's final counters.
    pub counts: CampaignCounts,
    /// Metrics files written under `out_dir`.
    pub metrics_written: u64,
    /// `(label, reason)` for every job the server reported as failed.
    pub failed: Vec<(String, String)>,
}

fn invalid(err: impl std::fmt::Display) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, err.to_string())
}

/// Loads a campaign file and expands it into submit-ready envelopes.
///
/// Scenario paths are resolved relative to the campaign file's
/// directory and their *text* is inlined into the envelope — the server
/// never touches the client's filesystem. Schemes and scenarios are
/// validated here too, so a bad campaign fails before anything is
/// queued.
///
/// # Errors
///
/// I/O errors reading the files, or [`io::ErrorKind::InvalidData`] for
/// parse/validation failures (with the offending label in the message).
pub fn load_campaign(path: &Path) -> io::Result<(String, Vec<JobEnvelope>)> {
    let text = fs::read_to_string(path)
        .map_err(|e| io::Error::new(e.kind(), format!("{}: {e}", path.display())))?;
    let spec = CampaignSpec::parse(&text).map_err(invalid)?;
    let base = path.parent().unwrap_or_else(|| Path::new("."));
    // Sweeps reference the same script hundreds of times; read it once.
    let mut scripts: BTreeMap<&str, String> = BTreeMap::new();
    let mut envelopes = Vec::with_capacity(spec.jobs.len());
    for job in &spec.jobs {
        SchemeSpec::parse(&job.scheme).map_err(|e| invalid(format!("job {}: {e}", job.label)))?;
        let scenario = match job.scenario.as_deref() {
            Some(rel) => {
                if !scripts.contains_key(rel) {
                    let file = base.join(rel);
                    let script = fs::read_to_string(&file).map_err(|e| {
                        io::Error::new(e.kind(), format!("{}: {e}", file.display()))
                    })?;
                    scripts.insert(rel, script);
                }
                let script = &scripts[rel];
                let parsed = Scenario::parse(script)
                    .map_err(|e| invalid(format!("job {}: {rel}: {e}", job.label)))?;
                parsed
                    .validate(job.hosts)
                    .map_err(|e| invalid(format!("job {}: {rel}: {e}", job.label)))?;
                Some(script.clone())
            }
            None => None,
        };
        envelopes.push(JobEnvelope {
            label: job.label.clone(),
            scheme: job.scheme.clone(),
            map_units: job.map_units,
            hosts: job.hosts,
            broadcasts: job.broadcasts,
            seed: job.seed,
            repeats: job.repeats,
            scenario,
        });
    }
    Ok((spec.name.clone(), envelopes))
}

/// In-memory cap on retained failure reports: every failure is printed
/// as it streams in, but a server spraying `JobFailed` frames must not
/// grow the client's memory without bound.
const MAX_REPORTED_FAILURES: usize = 1024;

/// Refuses labels that could escape `out_dir` when used as a filename.
/// Labels from [`load_campaign`] always pass; this guards raw-protocol
/// sessions against a hostile or confused server.
fn filename_safe(label: &str) -> bool {
    !label.is_empty()
        && label.len() <= 128
        && label
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || b == b'.' || b == b'_' || b == b'-')
        && !label.starts_with('.')
}

/// Submits one campaign over an MCMP session and streams it to
/// completion (or through a [`SessionOptions::cancel_after`] cancel).
/// Blocks until the server's `Summary` frame, then sends `Shutdown`.
///
/// # Errors
///
/// Transport errors, a `Rejected` reply, a protocol violation, or the
/// stream ending before the summary — all as `io::Error`.
#[cfg_attr(simlint, serve_loop)]
pub fn run_session(
    input: impl Read,
    output: impl Write,
    name: &str,
    jobs: Vec<JobEnvelope>,
    options: &SessionOptions,
) -> io::Result<ClientReport> {
    fs::create_dir_all(&options.out_dir)?;
    let total = jobs.len() as u64;
    let mut writer = FrameWriter::new(output)?;
    writer.write(&Frame::Submit {
        name: name.to_string(),
        jobs,
    })?;
    let mut reader = FrameReader::new(input)?;

    let mut campaign_id = 0u64;
    let mut metrics_written = 0u64;
    let mut failed = Vec::new();
    let mut cancel_sent = false;
    loop {
        let Some(frame) = reader.read()? else {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the session before the campaign summary",
            ));
        };
        match frame {
            Frame::Accepted { campaign, jobs } => {
                campaign_id = campaign;
                if !options.quiet {
                    eprintln!("manet-client: campaign #{campaign} accepted ({jobs} jobs)");
                }
            }
            Frame::Rejected { name, reason } => {
                return Err(invalid(format!("campaign '{name}' rejected: {reason}")));
            }
            Frame::JobMetrics { label, payload, .. } => {
                if !filename_safe(&label) {
                    return Err(invalid(format!("unsafe job label from server: {label:?}")));
                }
                fs::write(options.out_dir.join(format!("{label}.json")), &payload)?;
                metrics_written += 1;
                if !cancel_sent && options.cancel_after == Some(metrics_written) {
                    if !options.quiet {
                        eprintln!(
                            "manet-client: cancelling campaign #{campaign_id} after {metrics_written} results"
                        );
                    }
                    writer.write(&Frame::Cancel {
                        campaign: campaign_id,
                    })?;
                    cancel_sent = true;
                }
            }
            Frame::JobFailed { label, reason, .. } => {
                eprintln!("manet-client: job '{label}' failed: {reason}");
                if failed.len() < MAX_REPORTED_FAILURES {
                    failed.push((label, reason));
                }
            }
            Frame::Progress { counts, .. } => {
                if !options.quiet {
                    eprintln!(
                        "manet-client: {} / {} jobs done ({} failed, {} cancelled)",
                        counts.completed + counts.failed + counts.cancelled,
                        if counts.total != 0 {
                            counts.total
                        } else {
                            total
                        },
                        counts.failed,
                        counts.cancelled,
                    );
                }
            }
            Frame::Summary { campaign, counts } => {
                if !options.quiet {
                    eprintln!(
                        "manet-client: campaign #{campaign} done: {} completed, {} cancelled, {} failed",
                        counts.completed, counts.cancelled, counts.failed,
                    );
                }
                writer.write(&Frame::Shutdown)?;
                return Ok(ClientReport {
                    campaign,
                    counts,
                    metrics_written,
                    failed,
                });
            }
            other => {
                return Err(invalid(format!("unexpected server frame: {other:?}")));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{serve, ServerConfig};
    use std::sync::atomic::{AtomicUsize, Ordering};

    /// A unique scratch dir per test, no wall-clock involved.
    fn scratch(tag: &str) -> PathBuf {
        static NEXT: AtomicUsize = AtomicUsize::new(0);
        let dir = std::env::temp_dir().join(format!(
            "manet-campaign-client-{}-{tag}-{}",
            std::process::id(),
            NEXT.fetch_add(1, Ordering::Relaxed)
        ));
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn job(label: &str, seed: u64) -> JobEnvelope {
        JobEnvelope {
            label: label.into(),
            scheme: "counter:3".into(),
            map_units: 1,
            hosts: 6,
            broadcasts: 1,
            seed,
            repeats: 1,
            scenario: None,
        }
    }

    /// Runs a client session against an in-process server over a socket
    /// pair, returning the client's report.
    fn round_trip(
        jobs: Vec<JobEnvelope>,
        options: &SessionOptions,
    ) -> (ClientReport, crate::server::ServeSummary) {
        use std::os::unix::net::UnixStream;
        let (client_side, server_side) = UnixStream::pair().unwrap();
        let config = ServerConfig {
            workers: Some(2),
            queue_capacity: 4096,
        };
        std::thread::scope(|scope| {
            let server = scope.spawn(move || {
                let input = server_side.try_clone().unwrap();
                serve(input, server_side, &config).unwrap()
            });
            let input = client_side.try_clone().unwrap();
            let report = run_session(input, client_side, "trip", jobs, options).unwrap();
            (report, server.join().unwrap())
        })
    }

    #[test]
    fn session_round_trip_writes_one_file_per_job() {
        let out_dir = scratch("roundtrip");
        let options = SessionOptions {
            out_dir: out_dir.clone(),
            cancel_after: None,
            quiet: true,
        };
        let (report, summary) = round_trip(vec![job("alpha", 1), job("beta", 2)], &options);
        assert_eq!(report.counts.completed, 2);
        assert_eq!(report.metrics_written, 2);
        assert_eq!(summary.jobs.completed, 2);
        for label in ["alpha", "beta"] {
            let path = out_dir.join(format!("{label}.json"));
            let body = fs::read_to_string(&path).unwrap();
            assert!(body.contains("manet-broadcast-metrics/1"), "{path:?}");
        }
        fs::remove_dir_all(&out_dir).unwrap();
    }

    #[test]
    fn streamed_metrics_match_the_one_shot_pipeline_bytes() {
        let out_dir = scratch("identity");
        let options = SessionOptions {
            out_dir: out_dir.clone(),
            cancel_after: None,
            quiet: true,
        };
        let (report, _) = round_trip(vec![job("ident", 42)], &options);
        assert_eq!(report.counts.completed, 1);

        // The same document the one-shot CLI metrics path produces.
        let config = broadcast_core::SimConfig::builder(1, SchemeSpec::parse("counter:3").unwrap())
            .hosts(6)
            .broadcasts(1)
            .seed(42)
            .build();
        let report_one_shot = broadcast_core::World::new(config).run();
        let record = manet_experiments::metrics_record(std::slice::from_ref(&report_one_shot));
        let expected = manet_experiments::render_metrics_json(
            "single",
            &[("manet-sim".to_string(), vec![record])],
        );
        let streamed = fs::read_to_string(out_dir.join("ident.json")).unwrap();
        assert_eq!(
            streamed, expected,
            "streamed metrics must be byte-identical"
        );
        fs::remove_dir_all(&out_dir).unwrap();
    }

    #[test]
    fn cancel_after_flushes_partial_results_and_drains() {
        let out_dir = scratch("cancel");
        let options = SessionOptions {
            out_dir: out_dir.clone(),
            cancel_after: Some(1),
            quiet: true,
        };
        // Jobs heavy enough (tens of ms each) that the cancel — sent the
        // moment the first result lands, while the backlog is still
        // deep — always beats the remaining ~38 jobs to the scheduler.
        let jobs: Vec<_> = (0..40)
            .map(|i| JobEnvelope {
                label: format!("c{i:02}"),
                scheme: "counter:3".into(),
                map_units: 1,
                hosts: 40,
                broadcasts: 30,
                seed: i,
                repeats: 1,
                scenario: None,
            })
            .collect();
        let (report, _) = round_trip(jobs, &options);
        assert_eq!(report.counts.total, 40);
        assert!(report.counts.completed >= 1, "at least the trigger result");
        assert!(report.counts.cancelled > 0, "cancel reached pending jobs");
        assert_eq!(
            report.counts.completed + report.counts.cancelled + report.counts.failed,
            40,
            "every job is accounted for"
        );
        assert_eq!(report.metrics_written, report.counts.completed);
        assert_eq!(
            fs::read_dir(&out_dir).unwrap().count() as u64,
            report.metrics_written,
            "exactly the completed jobs were flushed to disk"
        );
        fs::remove_dir_all(&out_dir).unwrap();
    }

    #[test]
    fn unsafe_labels_never_touch_the_filesystem() {
        for bad in ["", "../escape", "a/b", ".hidden", "nul\0byte"] {
            assert!(!filename_safe(bad), "{bad:?}");
        }
        assert!(filename_safe("j0001_counter-3_s42.v2"));
    }

    #[test]
    fn campaign_files_load_into_envelopes() {
        let dir = scratch("load");
        let campaign = dir.join("c.txt");
        fs::write(
            &campaign,
            "manet-campaign/1\n\
             name demo\n\
             defaults scheme=counter:2 map=1 hosts=8 broadcasts=2\n\
             job label=first seed=5\n\
             sweep scheme=flooding seeds=1..=3\n",
        )
        .unwrap();
        let (name, envelopes) = load_campaign(&campaign).unwrap();
        assert_eq!(name, "demo");
        assert_eq!(envelopes.len(), 4);
        assert_eq!(envelopes[0].label, "first");
        assert_eq!(envelopes[0].seed, 5);
        assert!(envelopes[1..].iter().all(|e| e.scheme == "flooding"));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bad_schemes_fail_at_load_time() {
        let dir = scratch("badscheme");
        let campaign = dir.join("c.txt");
        fs::write(&campaign, "manet-campaign/1\njob scheme=warp9 seed=1\n").unwrap();
        let err = load_campaign(&campaign).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        fs::remove_dir_all(&dir).unwrap();
    }
}
