//! Work-stealing campaign scheduler.
//!
//! Jobs are index-addressed into the sim-engine [`WorkerPool`]: the
//! pool's shared claim cursor *is* the work-stealing — whichever worker
//! frees up first claims the next unstarted job, so a long job never
//! blocks the queue behind it. Every job is itself a deterministic
//! simulation, which makes results placement-invariant: the per-job
//! metrics bytes are identical for any worker count, only the completion
//! (and therefore streaming) order varies.
//!
//! Each completed job streams one [`Frame::JobMetrics`] carrying the
//! exact `manet-broadcast-metrics/1` document the one-shot CLI would
//! have written, followed by a compact [`Frame::Progress`] tick —
//! integers, not a re-serialized report. Cancellation is cooperative at
//! two levels: unstarted jobs observe the token before building a world,
//! and in-flight worlds drain at their next
//! [`advance_until`](broadcast_core::World::advance_until) pause
//! boundary via [`World::run_cancellable`](broadcast_core::World).

use std::io::{self, Write};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

use broadcast_core::trace::NoopObserver;
use broadcast_core::{CancelToken, Scenario, SchemeSpec, SimConfig, World};
use manet_sim_engine::{SimDuration, WorkerPool};

use crate::mcmp::{CampaignCounts, Frame, FrameWriter, JobEnvelope};
use crate::queue::QueuedCampaign;

/// Simulated-time slice between cancellation checks of a running world.
/// Small enough that a cancel drains within milliseconds of wall time;
/// large enough that the pause checks are invisible in the profile.
const CANCEL_SLICE: SimDuration = SimDuration::from_millis(100);

/// How one job ended.
enum JobOutcome {
    /// The metrics JSON to stream.
    Completed(String),
    /// The cancel token was raised before or during the run.
    Cancelled,
    /// The envelope could not be turned into a valid run.
    Failed(String),
}

/// Validates an envelope and expands it into one config per repeat
/// (seeds `seed..seed + repeats`), mirroring the experiment harness.
///
/// # Errors
///
/// Returns the first problem as a human-readable string; nothing in the
/// returned configs can make [`SimConfig::validate`] fail, so the
/// builder below never panics on wire input.
fn job_configs(job: &JobEnvelope) -> Result<Vec<SimConfig>, String> {
    let scheme = SchemeSpec::parse(&job.scheme)?;
    if job.map_units == 0 || job.hosts == 0 || job.broadcasts == 0 {
        return Err("map, hosts, and broadcasts must be nonzero".into());
    }
    if job.repeats == 0 {
        return Err("repeats must be nonzero".into());
    }
    let last_seed = job
        .seed
        .checked_add(u64::from(job.repeats) - 1)
        .ok_or("seed + repeats overflows")?;
    let scenario = match &job.scenario {
        Some(text) => {
            let scenario = Scenario::parse(text).map_err(|e| format!("scenario: {e}"))?;
            scenario
                .validate(job.hosts)
                .map_err(|e| format!("scenario: {e}"))?;
            Some(scenario)
        }
        None => None,
    };
    Ok((job.seed..=last_seed)
        .map(|seed| {
            let mut builder = SimConfig::builder(job.map_units, scheme.clone())
                .hosts(job.hosts)
                .broadcasts(job.broadcasts)
                .seed(seed);
            if let Some(scenario) = &scenario {
                builder = builder.scenario(scenario.clone());
            }
            builder.build()
        })
        .collect())
}

/// Runs one job to its metrics document, observing `cancel` at pause
/// boundaries.
fn execute_job(job: &JobEnvelope, cancel: &CancelToken) -> JobOutcome {
    let configs = match job_configs(job) {
        Ok(configs) => configs,
        Err(reason) => return JobOutcome::Failed(reason),
    };
    let mut reports = Vec::with_capacity(configs.len());
    for config in configs {
        match World::new(config).run_cancellable(cancel, CANCEL_SLICE, &mut NoopObserver) {
            Some(report) => reports.push(report),
            None => return JobOutcome::Cancelled,
        }
    }
    // The exact document the one-shot CLI writes for `--metrics`: same
    // figure id, same scale tag, same record shape — which is what makes
    // a streamed job result `cmp`-equal to its CLI counterpart.
    let record = manet_experiments::metrics_record(&reports);
    let json = manet_experiments::render_metrics_json(
        "single",
        &[("manet-sim".to_string(), vec![record])],
    );
    JobOutcome::Completed(json)
}

/// Runs a campaign across the pool, streaming results into `writer`.
/// Returns the final counters (also already streamed as the summary's
/// contents — the caller writes the [`Frame::Summary`] so it can order
/// it after its own bookkeeping).
///
/// # Errors
///
/// The first transport error, after the pool has quiesced. Jobs that
/// finished after the error are counted but not streamed.
pub fn run_campaign<W: Write + Send>(
    campaign: &QueuedCampaign,
    pool: &WorkerPool,
    writer: &Mutex<FrameWriter<W>>,
) -> io::Result<CampaignCounts> {
    let counts = Mutex::new(CampaignCounts {
        total: campaign.jobs.len() as u64,
        ..Default::default()
    });
    let error: Mutex<Option<io::Error>> = Mutex::new(None);
    // Raised on the first transport error: the session is dead, so
    // remaining jobs drain as cancelled instead of simulating into a
    // closed pipe.
    let abort = AtomicBool::new(false);

    pool.run(campaign.jobs.len(), &|index| {
        let job = &campaign.jobs[index];
        if campaign.cancel.is_cancelled() || abort.load(Ordering::Acquire) {
            let mut c = counts.lock().unwrap_or_else(|e| e.into_inner());
            c.cancelled += 1;
            return;
        }
        let outcome = execute_job(job, &campaign.cancel);
        // Writer lock first, counts second (and only briefly): ticks are
        // snapshotted in the order they hit the stream, so a reader sees
        // monotone counters.
        let mut w = writer.lock().unwrap_or_else(|e| e.into_inner());
        let (result_frame, tick) = {
            let mut c = counts.lock().unwrap_or_else(|e| e.into_inner());
            let frame = match outcome {
                JobOutcome::Completed(json) => {
                    c.completed += 1;
                    Some(Frame::JobMetrics {
                        campaign: campaign.id,
                        job: index as u64,
                        label: job.label.clone(),
                        payload: json.into_bytes(),
                    })
                }
                JobOutcome::Failed(reason) => {
                    c.failed += 1;
                    Some(Frame::JobFailed {
                        campaign: campaign.id,
                        job: index as u64,
                        label: job.label.clone(),
                        reason,
                    })
                }
                JobOutcome::Cancelled => {
                    c.cancelled += 1;
                    None
                }
            };
            (frame, *c)
        };
        if let Some(frame) = result_frame {
            let written = w.write(&frame).and_then(|()| {
                w.write(&Frame::Progress {
                    campaign: campaign.id,
                    counts: tick,
                })
            });
            if let Err(err) = written {
                abort.store(true, Ordering::Release);
                let mut slot = error.lock().unwrap_or_else(|e| e.into_inner());
                slot.get_or_insert(err);
            }
        }
    });

    let final_counts = *counts.lock().unwrap_or_else(|e| e.into_inner());
    match error.into_inner().unwrap_or_else(|e| e.into_inner()) {
        Some(err) => Err(err),
        None => Ok(final_counts),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn envelope(label: &str, seed: u64) -> JobEnvelope {
        JobEnvelope {
            label: label.into(),
            scheme: "counter:3".into(),
            map_units: 1,
            hosts: 8,
            broadcasts: 2,
            seed,
            repeats: 1,
            scenario: None,
        }
    }

    fn campaign(jobs: Vec<JobEnvelope>) -> QueuedCampaign {
        QueuedCampaign {
            id: 1,
            name: "t".into(),
            jobs,
            cancel: CancelToken::new(),
        }
    }

    fn stream_frames(bytes: &[u8]) -> Vec<Frame> {
        let mut reader = crate::mcmp::FrameReader::new(bytes).unwrap();
        let mut frames = Vec::new();
        while let Some(frame) = reader.read().unwrap() {
            frames.push(frame);
        }
        frames
    }

    #[test]
    fn invalid_envelopes_fail_without_panicking() {
        for bad in [
            JobEnvelope {
                scheme: "bogus".into(),
                ..envelope("a", 1)
            },
            JobEnvelope {
                map_units: 0,
                ..envelope("b", 1)
            },
            JobEnvelope {
                repeats: 0,
                ..envelope("c", 1)
            },
            JobEnvelope {
                seed: u64::MAX,
                repeats: 2,
                ..envelope("d", 1)
            },
            JobEnvelope {
                scenario: Some("not a scenario".into()),
                ..envelope("e", 1)
            },
        ] {
            assert!(job_configs(&bad).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn repeats_expand_to_consecutive_seeds() {
        let configs = job_configs(&JobEnvelope {
            repeats: 3,
            ..envelope("r", 10)
        })
        .unwrap();
        assert_eq!(
            configs.iter().map(|c| c.seed).collect::<Vec<_>>(),
            [10, 11, 12]
        );
    }

    #[test]
    fn campaign_streams_metrics_and_monotone_ticks() {
        let jobs: Vec<_> = (0..6).map(|i| envelope(&format!("j{i}"), i)).collect();
        let campaign = campaign(jobs);
        let pool = WorkerPool::new(2);
        let writer = Mutex::new(FrameWriter::new(Vec::new()).unwrap());
        let counts = run_campaign(&campaign, &pool, &writer).unwrap();
        assert_eq!((counts.total, counts.completed), (6, 6));
        let frames = stream_frames(&writer.into_inner().unwrap().into_inner());
        let mut seen = CampaignCounts::default();
        let mut metrics = 0;
        for frame in frames {
            match frame {
                Frame::JobMetrics { payload, .. } => {
                    metrics += 1;
                    assert!(payload.starts_with(b"{"));
                }
                Frame::Progress { counts, .. } => {
                    assert!(counts.completed >= seen.completed, "monotone ticks");
                    seen = counts;
                }
                other => panic!("unexpected frame {other:?}"),
            }
        }
        assert_eq!(metrics, 6);
        assert_eq!(seen.completed, 6, "last tick covers every job");
    }

    #[test]
    fn failed_jobs_stream_failures_and_count() {
        let campaign = campaign(vec![
            envelope("good", 1),
            JobEnvelope {
                scheme: "bogus".into(),
                ..envelope("bad", 2)
            },
        ]);
        let pool = WorkerPool::new(0);
        let writer = Mutex::new(FrameWriter::new(Vec::new()).unwrap());
        let counts = run_campaign(&campaign, &pool, &writer).unwrap();
        assert_eq!((counts.completed, counts.failed), (1, 1));
        let frames = stream_frames(&writer.into_inner().unwrap().into_inner());
        assert!(frames.iter().any(|f| matches!(
            f,
            Frame::JobFailed { label, .. } if label == "bad"
        )));
    }

    #[test]
    fn pre_cancelled_campaign_runs_nothing() {
        let campaign = campaign((0..5).map(|i| envelope(&format!("j{i}"), i)).collect());
        campaign.cancel.cancel();
        let pool = WorkerPool::new(2);
        let writer = Mutex::new(FrameWriter::new(Vec::new()).unwrap());
        let counts = run_campaign(&campaign, &pool, &writer).unwrap();
        assert_eq!((counts.cancelled, counts.completed), (5, 0));
        let frames = stream_frames(&writer.into_inner().unwrap().into_inner());
        assert!(frames.is_empty(), "no result frames for cancelled jobs");
    }
}
