//! The campaign server: transport loops around the queue + scheduler.
//!
//! A session is one full-duplex byte stream speaking MCMP v1 — either
//! the process's stdin/stdout (pipe mode, used by CI and by
//! `manet-client --server`) or one accepted Unix-socket connection. Two
//! loops share the session: a reader thread that admits submissions into
//! the [`CampaignQueue`] (answering `Accepted`/`Rejected` immediately,
//! even while earlier campaigns are still running), and the scheduler
//! loop that pops campaigns and fans their jobs across one shared
//! [`WorkerPool`]. The frame writer is the only shared output and is
//! mutex-ordered, so admission replies interleave with streamed results
//! at frame granularity.
//!
//! Sessions end when the client sends `Shutdown` or closes its write
//! side; either way the backlog drains first (a client that wants to
//! abandon queued work cancels the campaigns before hanging up).

use std::io::{self, Read, Write};
use std::sync::Mutex;

use manet_sim_engine::WorkerPool;

use crate::mcmp::{CampaignCounts, Frame, FrameReader, FrameWriter};
use crate::queue::CampaignQueue;
use crate::scheduler::run_campaign;

/// Tuning knobs for [`serve`].
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// Pool threads for the scheduler. `None` auto-detects
    /// (`available_parallelism - 1`, so the scheduler thread keeps a
    /// core); `Some(0)` runs jobs inline on the scheduler thread.
    pub workers: Option<usize>,
    /// Maximum queued (not yet running) jobs across all campaigns.
    pub queue_capacity: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: None,
            queue_capacity: 65_536,
        }
    }
}

impl ServerConfig {
    fn pool_threads(&self) -> usize {
        self.workers.unwrap_or_else(|| {
            std::thread::available_parallelism().map_or(0, |n| n.get().saturating_sub(1))
        })
    }
}

/// What one session did, for logs and tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeSummary {
    /// Campaigns popped and run to a summary frame.
    pub campaigns: u64,
    /// Job counters aggregated across those campaigns.
    pub jobs: CampaignCounts,
    /// Whether the client ended the session with an explicit `Shutdown`
    /// frame (as opposed to closing the stream). A socket server uses
    /// this to stop accepting further connections.
    pub shutdown: bool,
}

/// The session reader: admits client frames into the queue until the
/// client shuts down. Returns whether the shutdown was explicit.
///
/// Closes the queue on *every* exit path — the scheduler loop blocks on
/// [`CampaignQueue::pop`], so an early return that skipped the close
/// would deadlock the session.
#[cfg_attr(simlint, serve_loop)]
fn reader_loop<W: Write + Send>(
    input: impl Read,
    queue: &CampaignQueue,
    writer: &Mutex<FrameWriter<W>>,
) -> io::Result<bool> {
    let result = (|| {
        let mut reader = FrameReader::new(input)?;
        loop {
            let frame = match reader.read()? {
                Some(frame) => frame,
                // Clean EOF: the client hung up; drain the backlog.
                None => return Ok(false),
            };
            match frame {
                Frame::Submit { name, jobs } => {
                    let njobs = jobs.len() as u64;
                    // The writer lock is taken *before* `submit`: the
                    // moment the campaign is in the queue the scheduler
                    // can start streaming its results, and `Accepted`
                    // must reach the stream before any frame that
                    // mentions the campaign id. The lock orders them —
                    // a result frame blocks on it until the reply is
                    // out. (Safe against the scheduler side: nothing
                    // there waits on the writer while holding the
                    // queue's lock.)
                    let mut w = writer.lock().unwrap_or_else(|e| e.into_inner());
                    let reply = match queue.submit(name.clone(), jobs) {
                        Ok(campaign) => Frame::Accepted {
                            campaign,
                            jobs: njobs,
                        },
                        Err(err) => Frame::Rejected {
                            name,
                            reason: err.to_string(),
                        },
                    };
                    w.write(&reply)?;
                }
                Frame::Cancel { campaign } => {
                    // Best-effort by design: an unknown or finished id is
                    // not a protocol error (the race is inherent).
                    queue.cancel(campaign);
                }
                Frame::Shutdown => return Ok(true),
                other => {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("unexpected client frame: {other:?}"),
                    ));
                }
            }
        }
    })();
    queue.close();
    result
}

/// The scheduler: pops campaigns until the queue closes and drains, and
/// streams each one's results plus a final summary frame.
#[cfg_attr(simlint, serve_loop)]
fn scheduler_loop<W: Write + Send>(
    queue: &CampaignQueue,
    pool: &WorkerPool,
    writer: &Mutex<FrameWriter<W>>,
) -> io::Result<(u64, CampaignCounts)> {
    let mut campaigns = 0u64;
    let mut jobs = CampaignCounts::default();
    while let Some(campaign) = queue.pop() {
        let result = run_campaign(&campaign, pool, writer);
        queue.finish(campaign.id);
        let counts = match result {
            Ok(counts) => counts,
            Err(err) => {
                // Transport is dead: refuse the rest of the backlog too.
                queue.close();
                return Err(err);
            }
        };
        campaigns += 1;
        jobs.total += counts.total;
        jobs.completed += counts.completed;
        jobs.cancelled += counts.cancelled;
        jobs.failed += counts.failed;
        let mut w = writer.lock().unwrap_or_else(|e| e.into_inner());
        w.write(&Frame::Summary {
            campaign: campaign.id,
            counts,
        })?;
    }
    Ok((campaigns, jobs))
}

/// Serves one MCMP session over the given byte streams, blocking until
/// the client shuts down and the backlog drains.
///
/// # Errors
///
/// The first transport or protocol error on either direction; whichever
/// loop failed first wins (the scheduler's error takes precedence when
/// both report one, since it usually caused the reader's).
pub fn serve(
    input: impl Read + Send,
    output: impl Write + Send,
    config: &ServerConfig,
) -> io::Result<ServeSummary> {
    let pool = WorkerPool::new(config.pool_threads());
    let queue = CampaignQueue::new(config.queue_capacity);
    let writer = Mutex::new(FrameWriter::new(output)?);

    let (reader_result, scheduler_result) = std::thread::scope(|scope| {
        let reader = scope.spawn(|| reader_loop(input, &queue, &writer));
        let scheduled = scheduler_loop(&queue, &pool, &writer);
        // The scheduler only exits once the queue closed, which only the
        // reader loop does — so this join does not hang.
        (reader.join().expect("session reader panicked"), scheduled)
    });

    let (campaigns, jobs) = scheduler_result?;
    let shutdown = reader_result?;
    Ok(ServeSummary {
        campaigns,
        jobs,
        shutdown,
    })
}

/// Binds a Unix socket and serves connections one at a time until a
/// client ends its session with an explicit `Shutdown` frame. A stale
/// socket file at `path` is replaced. Per-connection errors are logged
/// to stderr and the listener keeps accepting.
///
/// # Errors
///
/// Bind/accept failures only — session errors do not stop the server.
#[cfg(unix)]
pub fn serve_unix(path: &std::path::Path, config: &ServerConfig) -> io::Result<()> {
    use std::os::unix::net::UnixListener;

    match std::fs::remove_file(path) {
        Ok(()) => {}
        Err(err) if err.kind() == io::ErrorKind::NotFound => {}
        Err(err) => return Err(err),
    }
    let listener = UnixListener::bind(path)?;
    eprintln!("manet-sim serve: listening on {}", path.display());
    loop {
        let (stream, _addr) = listener.accept()?;
        let input = stream.try_clone()?;
        match serve(input, stream, config) {
            Ok(summary) => {
                eprintln!(
                    "manet-sim serve: session done: {} campaigns, {} jobs ({} completed, {} cancelled, {} failed)",
                    summary.campaigns,
                    summary.jobs.total,
                    summary.jobs.completed,
                    summary.jobs.cancelled,
                    summary.jobs.failed,
                );
                if summary.shutdown {
                    return Ok(());
                }
            }
            Err(err) => eprintln!("manet-sim serve: session failed: {err}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mcmp::{JobEnvelope, MCMP_MAGIC, MCMP_VERSION};
    use manet_sim_engine::WireEncoder;

    fn job(label: &str, seed: u64) -> JobEnvelope {
        JobEnvelope {
            label: label.into(),
            scheme: "flooding".into(),
            map_units: 1,
            hosts: 6,
            broadcasts: 1,
            seed,
            repeats: 1,
            scenario: None,
        }
    }

    /// Encodes a client session (header + frames) into raw bytes.
    fn client_script(frames: &[Frame]) -> Vec<u8> {
        let mut out = Vec::new();
        crate::mcmp::write_stream_header(&mut out).unwrap();
        for frame in frames {
            let mut enc = WireEncoder::new();
            frame.encode(&mut enc);
            let payload = enc.into_bytes();
            out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
            out.extend_from_slice(&payload);
        }
        out
    }

    fn server_frames(bytes: &[u8]) -> Vec<Frame> {
        let mut reader = FrameReader::new(bytes).unwrap();
        let mut frames = Vec::new();
        while let Some(frame) = reader.read().unwrap() {
            frames.push(frame);
        }
        frames
    }

    fn quick_config() -> ServerConfig {
        ServerConfig {
            workers: Some(2),
            queue_capacity: 1024,
        }
    }

    #[test]
    fn pipe_session_runs_a_campaign_to_summary() {
        let input = client_script(&[
            Frame::Submit {
                name: "smoke".into(),
                jobs: vec![job("a", 1), job("b", 2)],
            },
            Frame::Shutdown,
        ]);
        let mut output = Vec::new();
        let summary = serve(&input[..], &mut output, &quick_config()).unwrap();
        assert_eq!(summary.campaigns, 1);
        assert_eq!(summary.jobs.completed, 2);
        assert!(summary.shutdown);

        let frames = server_frames(&output);
        assert!(matches!(frames[0], Frame::Accepted { jobs: 2, .. }));
        let metrics = frames
            .iter()
            .filter(|f| matches!(f, Frame::JobMetrics { .. }))
            .count();
        assert_eq!(metrics, 2);
        assert!(matches!(
            frames.last(),
            Some(Frame::Summary {
                counts: CampaignCounts {
                    total: 2,
                    completed: 2,
                    ..
                },
                ..
            })
        ));
    }

    #[test]
    fn eof_without_shutdown_still_drains_the_backlog() {
        let input = client_script(&[Frame::Submit {
            name: "eof".into(),
            jobs: vec![job("only", 7)],
        }]);
        let mut output = Vec::new();
        let summary = serve(&input[..], &mut output, &quick_config()).unwrap();
        assert_eq!(summary.jobs.completed, 1);
        assert!(!summary.shutdown, "EOF is not an explicit shutdown");
    }

    #[test]
    fn oversubmitting_the_queue_is_rejected_not_fatal() {
        let config = ServerConfig {
            workers: Some(0),
            queue_capacity: 1,
        };
        let input = client_script(&[
            Frame::Submit {
                name: "too-big".into(),
                jobs: vec![job("a", 1), job("b", 2)],
            },
            Frame::Submit {
                name: "fits".into(),
                jobs: vec![job("c", 3)],
            },
            Frame::Shutdown,
        ]);
        let mut output = Vec::new();
        let summary = serve(&input[..], &mut output, &config).unwrap();
        assert_eq!(summary.campaigns, 1, "only the fitting campaign ran");
        let frames = server_frames(&output);
        assert!(matches!(
            &frames[0],
            Frame::Rejected { name, .. } if name == "too-big"
        ));
    }

    #[test]
    fn server_frames_from_client_are_protocol_errors() {
        let input = client_script(&[Frame::Progress {
            campaign: 1,
            counts: CampaignCounts::default(),
        }]);
        let mut output = Vec::new();
        let err = serve(&input[..], &mut output, &quick_config()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn garbage_header_fails_the_session() {
        let mut input = Vec::from(*MCMP_MAGIC);
        input.extend_from_slice(&(MCMP_VERSION + 1).to_le_bytes());
        let mut output = Vec::new();
        let err = serve(&input[..], &mut output, &quick_config()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }
}
