//! Bounded campaign queue.
//!
//! The server's admission control: campaigns are accepted as a group of
//! jobs or not at all, the total number of queued jobs is capped, and
//! every campaign carries a [`CancelToken`] that can be raised while it
//! is still queued *or* already running. The queue is the only
//! synchronization point between the transport reader thread (submit,
//! cancel, close) and the scheduler loop (pop, finish).

use std::collections::{BTreeMap, VecDeque};
use std::sync::{Condvar, Mutex, MutexGuard};

use broadcast_core::CancelToken;

use crate::mcmp::JobEnvelope;

/// One admitted campaign, handed from the queue to the scheduler.
#[derive(Debug)]
pub struct QueuedCampaign {
    /// Server-assigned id, unique per session.
    pub id: u64,
    /// Submitted campaign name.
    pub name: String,
    /// The jobs, in submission order.
    pub jobs: Vec<JobEnvelope>,
    /// Raised by [`CampaignQueue::cancel`]; observed by the scheduler at
    /// job boundaries and by running worlds at pause boundaries.
    pub cancel: CancelToken,
}

/// Why a submit was refused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// Admitting the campaign would exceed the queue's job capacity.
    Full {
        /// Jobs currently queued.
        queued: usize,
        /// The queue's capacity.
        capacity: usize,
    },
    /// The queue is closed (server shutting down).
    Closed,
    /// The campaign itself is unusable (empty, too large).
    Invalid(String),
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::Full { queued, capacity } => {
                write!(f, "queue full: {queued} jobs queued of {capacity} capacity")
            }
            SubmitError::Closed => write!(f, "server is shutting down"),
            SubmitError::Invalid(why) => write!(f, "invalid campaign: {why}"),
        }
    }
}

struct QueueState {
    pending: VecDeque<QueuedCampaign>,
    /// Jobs across every pending campaign (running ones no longer count
    /// against capacity — their results are already streaming out).
    queued_jobs: usize,
    next_id: u64,
    closed: bool,
    /// Cancel tokens of campaigns that are queued or running, dropped by
    /// [`CampaignQueue::finish`].
    live: BTreeMap<u64, CancelToken>,
}

/// The bounded queue; see the module docs.
pub struct CampaignQueue {
    state: Mutex<QueueState>,
    ready: Condvar,
    capacity: usize,
}

impl std::fmt::Debug for CampaignQueue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CampaignQueue")
            .field("capacity", &self.capacity)
            .finish()
    }
}

fn lock(state: &Mutex<QueueState>) -> MutexGuard<'_, QueueState> {
    state.lock().unwrap_or_else(|e| e.into_inner())
}

impl CampaignQueue {
    /// Creates a queue admitting at most `capacity` queued jobs.
    pub fn new(capacity: usize) -> Self {
        CampaignQueue {
            state: Mutex::new(QueueState {
                pending: VecDeque::new(),
                queued_jobs: 0,
                next_id: 1,
                closed: false,
                live: BTreeMap::new(),
            }),
            ready: Condvar::new(),
            capacity,
        }
    }

    /// The job capacity this queue admits.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Admits a campaign whole, or refuses it without queuing anything.
    ///
    /// # Errors
    ///
    /// [`SubmitError::Full`] when the jobs would not fit,
    /// [`SubmitError::Closed`] after [`close`](Self::close), and
    /// [`SubmitError::Invalid`] for an empty campaign.
    pub fn submit(&self, name: String, jobs: Vec<JobEnvelope>) -> Result<u64, SubmitError> {
        if jobs.is_empty() {
            return Err(SubmitError::Invalid("no jobs".into()));
        }
        let mut st = lock(&self.state);
        if st.closed {
            return Err(SubmitError::Closed);
        }
        if st.queued_jobs + jobs.len() > self.capacity {
            return Err(SubmitError::Full {
                queued: st.queued_jobs,
                capacity: self.capacity,
            });
        }
        let id = st.next_id;
        st.next_id += 1;
        let cancel = CancelToken::new();
        st.queued_jobs += jobs.len();
        st.live.insert(id, cancel.clone());
        st.pending.push_back(QueuedCampaign {
            id,
            name,
            jobs,
            cancel,
        });
        self.ready.notify_one();
        Ok(id)
    }

    /// Raises the cancel token of a queued or running campaign. `false`
    /// when the id is unknown or already finished (cancels are
    /// best-effort, not errors).
    pub fn cancel(&self, id: u64) -> bool {
        let st = lock(&self.state);
        match st.live.get(&id) {
            Some(token) => {
                token.cancel();
                true
            }
            None => false,
        }
    }

    /// Closes the queue: subsequent submits fail and [`pop`](Self::pop)
    /// returns `None` once the backlog drains.
    pub fn close(&self) {
        let mut st = lock(&self.state);
        st.closed = true;
        self.ready.notify_all();
    }

    /// Blocks for the next campaign; `None` once the queue is closed and
    /// drained. The campaign's token stays registered for
    /// [`cancel`](Self::cancel) until [`finish`](Self::finish).
    pub fn pop(&self) -> Option<QueuedCampaign> {
        let mut st = lock(&self.state);
        loop {
            if let Some(campaign) = st.pending.pop_front() {
                st.queued_jobs -= campaign.jobs.len();
                return Some(campaign);
            }
            if st.closed {
                return None;
            }
            st = self.ready.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Drops a finished campaign's cancel registration.
    pub fn finish(&self, id: u64) {
        lock(&self.state).live.remove(&id);
    }

    /// `(queued_jobs, pending_campaigns)` — a monitoring snapshot.
    pub fn depth(&self) -> (usize, usize) {
        let st = lock(&self.state);
        (st.queued_jobs, st.pending.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(label: &str) -> JobEnvelope {
        JobEnvelope {
            label: label.into(),
            scheme: "flooding".into(),
            map_units: 1,
            hosts: 4,
            broadcasts: 1,
            seed: 1,
            repeats: 1,
            scenario: None,
        }
    }

    #[test]
    fn fifo_order_and_capacity_accounting() {
        let q = CampaignQueue::new(3);
        let a = q.submit("a".into(), vec![job("a0"), job("a1")]).unwrap();
        let b = q.submit("b".into(), vec![job("b0")]).unwrap();
        assert!(a < b, "ids are ordered");
        assert_eq!(q.depth(), (3, 2));
        // Full: a third campaign does not fit, whole-group semantics.
        let err = q.submit("c".into(), vec![job("c0")]).unwrap_err();
        assert_eq!(
            err,
            SubmitError::Full {
                queued: 3,
                capacity: 3
            }
        );
        let first = q.pop().unwrap();
        assert_eq!(first.name, "a");
        assert_eq!(q.depth(), (1, 1), "popped jobs free capacity");
        // Now the refused campaign fits.
        q.submit("c".into(), vec![job("c0")]).unwrap();
        q.finish(first.id);
    }

    #[test]
    fn cancel_reaches_queued_and_running_campaigns() {
        let q = CampaignQueue::new(10);
        let id = q.submit("x".into(), vec![job("x0")]).unwrap();
        assert!(q.cancel(id), "queued campaign is cancellable");
        let campaign = q.pop().unwrap();
        assert!(campaign.cancel.is_cancelled());
        // Still registered while "running".
        assert!(q.cancel(id));
        q.finish(id);
        assert!(!q.cancel(id), "finished campaigns are gone");
        assert!(!q.cancel(999), "unknown ids are a no-op");
    }

    #[test]
    fn close_drains_then_stops() {
        let q = CampaignQueue::new(10);
        q.submit("x".into(), vec![job("x0")]).unwrap();
        q.close();
        assert_eq!(
            q.submit("y".into(), vec![job("y0")]),
            Err(SubmitError::Closed)
        );
        assert!(q.pop().is_some(), "backlog still drains after close");
        assert!(q.pop().is_none(), "then the queue reports closed");
    }

    #[test]
    fn empty_campaigns_are_invalid() {
        let q = CampaignQueue::new(10);
        assert!(matches!(
            q.submit("e".into(), vec![]),
            Err(SubmitError::Invalid(_))
        ));
    }

    #[test]
    fn pop_blocks_until_submit() {
        let q = std::sync::Arc::new(CampaignQueue::new(4));
        let popper = {
            let q = std::sync::Arc::clone(&q);
            std::thread::spawn(move || q.pop().map(|c| c.name))
        };
        // No sleep: submit may land before or after the popper blocks;
        // both orders must hand the campaign over.
        q.submit("late".into(), vec![job("l0")]).unwrap();
        assert_eq!(popper.join().unwrap().as_deref(), Some("late"));
    }
}
