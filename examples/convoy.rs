//! Convoy scenario: exercises the extension features — random-waypoint
//! mobility, physical-layer capture, and latency percentiles.
//!
//! A supply convoy's escort vehicles roam between waypoints across a
//! 7×7 map while command broadcasts orders. Real radios exhibit capture
//! (a dominant signal survives interference), so we compare the paper's
//! pessimistic no-capture channel with a 10 dB capture model, reporting
//! tail latency rather than just the mean.
//!
//! ```text
//! cargo run --release --example convoy
//! ```

use manet_broadcast::{
    CaptureConfig, CounterThreshold, MobilitySpec, SchemeSpec, SimConfig, World,
};

fn run(label: &str, capture: Option<CaptureConfig>) {
    let mut builder = SimConfig::builder(
        7,
        SchemeSpec::AdaptiveCounter(CounterThreshold::paper_recommended()),
    )
    .mobility(MobilitySpec::RandomWaypoint)
    .max_speed_kmh(70.0)
    .broadcasts(100)
    .seed(1944);
    if let Some(model) = capture {
        builder = builder.capture(model);
    }
    let report = World::new(builder.build()).run();
    let latency = report.latency_summary();
    println!(
        "  {label:<12} RE {:>5.1}%   SRB {:>5.1}%   latency mean {:>6.1} ms  p50 {:>6.1}  p95 {:>6.1}  max {:>6.1}",
        report.reachability * 100.0,
        report.saved_rebroadcasts * 100.0,
        latency.mean_s * 1_000.0,
        latency.p50_s * 1_000.0,
        latency.p95_s * 1_000.0,
        latency.max_s * 1_000.0,
    );
}

fn main() {
    println!("convoy: 100 vehicles, waypoint mobility at 70 km/h, adaptive counter scheme");
    println!();
    run("no capture", None);
    run("capture 10dB", Some(CaptureConfig::typical()));
    println!();
    println!("capture rescues some frames that the pessimistic model garbles, so");
    println!("reachability and tail latency improve slightly; the adaptive scheme's");
    println!("behaviour does not depend on the channel optimism.");
}
