//! Quickstart: run one broadcast scheme on one map and print the paper's
//! three metrics.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use manet_broadcast::{CounterThreshold, SchemeSpec, SimConfig, World};

fn main() {
    // The paper's adaptive counter-based scheme (AC) on the 5x5 map:
    // 100 hosts roaming at up to 50 km/h, HELLO beacons every second.
    let config = SimConfig::builder(
        5,
        SchemeSpec::AdaptiveCounter(CounterThreshold::paper_recommended()),
    )
    .broadcasts(50)
    .seed(2026)
    .build();

    println!(
        "map {}x{}, {} hosts, {} broadcasts, scheme {} ...",
        config.map_units,
        config.map_units,
        config.hosts,
        config.broadcasts,
        config.scheme.label(),
    );

    let report = World::new(config).run();

    println!();
    println!(
        "reachability (RE)        {:>7.1}%",
        report.reachability * 100.0
    );
    println!(
        "saved rebroadcasts (SRB) {:>7.1}%",
        report.saved_rebroadcasts * 100.0
    );
    println!("average latency          {:>9.4} s", report.avg_latency_s);
    println!();
    println!(
        "{} data frames, {} hello frames, {} collisions over {:.0} simulated seconds",
        report.data_frames, report.hello_packets, report.collisions, report.sim_seconds,
    );
}
