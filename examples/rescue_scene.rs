//! Rescue-scene scenario: a sparse, fast-moving ad hoc network with no
//! infrastructure — the motivating deployment of the paper's
//! introduction ("rescue scenes", "soldiers on the march").
//!
//! Rescue teams spread over a ~5 km × 5 km area (the 9×9 map is very
//! sparse for 100 radios) and move quickly. Broadcast alerts must reach
//! everyone reachable, but battery and spectrum are scarce, so both
//! rebroadcasts and HELLO beacons should be minimized.
//!
//! This example compares the neighbor-coverage scheme under
//!
//! 1. a slow fixed hello interval (cheap but stale),
//! 2. a fast fixed hello interval (fresh but chatty), and
//! 3. the paper's dynamic hello interval (NC-DHI),
//!
//! reporting alert reachability and beacon traffic for each.
//!
//! ```text
//! cargo run --release --example rescue_scene
//! ```

use manet_broadcast::{
    DynamicHelloParams, HelloIntervalPolicy, NeighborInfo, SchemeSpec, SimConfig, SimDuration,
    World,
};

fn run(label: &str, policy: HelloIntervalPolicy) {
    let config = SimConfig::builder(9, SchemeSpec::NeighborCoverage)
        .broadcasts(80)
        .max_speed_kmh(60.0) // vehicles and runners, not strollers
        .neighbor_info(NeighborInfo::Hello(policy))
        .warmup(SimDuration::from_secs(15))
        .seed(404)
        .build();
    let report = World::new(config).run();
    let hello_rate = report.hello_packets as f64 / (100.0 * report.sim_seconds);
    println!(
        "  {label:<22} alert RE {:>5.1}%   SRB {:>5.1}%   beacons/host/s {:>5.3}",
        report.reachability * 100.0,
        report.saved_rebroadcasts * 100.0,
        hello_rate,
    );
}

fn main() {
    println!("rescue scene: 100 hosts, 4.5 km square, 60 km/h, neighbor-coverage scheme");
    println!();
    run(
        "fixed hello 10 s",
        HelloIntervalPolicy::Fixed(SimDuration::from_secs(10)),
    );
    run(
        "fixed hello 1 s",
        HelloIntervalPolicy::Fixed(SimDuration::from_secs(1)),
    );
    run(
        "dynamic (NC-DHI)",
        HelloIntervalPolicy::Dynamic(DynamicHelloParams::paper()),
    );
    println!();
    println!("expectation (paper Figs 11-12): 10 s beacons go stale at 60 km/h and");
    println!("cost reachability; 1 s beacons fix RE at maximum beacon cost; the");
    println!("dynamic interval recovers the reachability at a traffic level set by");
    println!("the actual neighborhood churn.");
}
