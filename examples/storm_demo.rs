//! The broadcast storm, demonstrated: flooding against the paper's
//! fixed-threshold and adaptive schemes on a dense and a sparse map.
//!
//! Reproduces the qualitative story of the paper's Fig. 13 in miniature:
//!
//! * on a **dense** map, flooding wastes the medium (SRB = 0) and loses
//!   packets to collisions, while the suppression schemes save most
//!   rebroadcasts at full reachability;
//! * on a **sparse** map, an aggressive fixed threshold (C = 2) starts
//!   missing hosts — the reachability/saving dilemma — while the adaptive
//!   schemes keep reachability high.
//!
//! ```text
//! cargo run --release --example storm_demo
//! ```

use manet_broadcast::{AreaThreshold, CounterThreshold, SchemeSpec, SimConfig, World};

fn run(map_units: u32, scheme: SchemeSpec, seed: u64) {
    let config = SimConfig::builder(map_units, scheme)
        .broadcasts(120)
        .seed(seed)
        .build();
    let label = config.scheme.label();
    let report = World::new(config).run();
    println!(
        "  {label:<10} RE {:>5.1}%   SRB {:>5.1}%   latency {:>7.4} s   collisions {:>6}",
        report.reachability * 100.0,
        report.saved_rebroadcasts * 100.0,
        report.avg_latency_s,
        report.collisions,
    );
}

fn main() {
    let schemes = || {
        [
            SchemeSpec::Flooding,
            SchemeSpec::Counter(2),
            SchemeSpec::Counter(6),
            SchemeSpec::AdaptiveCounter(CounterThreshold::paper_recommended()),
            SchemeSpec::Location(0.0134),
            SchemeSpec::AdaptiveLocation(AreaThreshold::paper_recommended()),
            SchemeSpec::NeighborCoverage,
        ]
    };

    println!("dense map (1x1, 100 hosts in one radio radius):");
    for scheme in schemes() {
        run(1, scheme, 11);
    }
    println!();
    println!("sparse map (9x9):");
    for scheme in schemes() {
        run(9, scheme, 11);
    }
}
