//! Broadcast storms meet host churn: replay a committed fault script and
//! compare each scheme's behaviour against the same fault-free run.
//!
//! Loads `examples/scenarios/churn_quick.txt` (schema `manet-scenario/1`),
//! runs flooding and the adaptive schemes on the 3x3 map with and without
//! the script, and prints what the injected faults cost — including the
//! per-cause split of scripted losses. Runs are deterministic: the same
//! scenario and seed reproduce the same report bit for bit, which the
//! example checks at the end.
//!
//! ```text
//! cargo run --release --example churn_storm
//! ```

use manet_broadcast::{CounterThreshold, Scenario, SchemeSpec, SimConfig, SimReport, World};

fn run(scheme: SchemeSpec, scenario: Option<&Scenario>, seed: u64) -> SimReport {
    let mut builder = SimConfig::builder(3, scheme)
        .hosts(100)
        .broadcasts(120)
        .seed(seed);
    if let Some(s) = scenario {
        builder = builder.scenario(s.clone());
    }
    World::new(builder.build()).run()
}

fn main() {
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/examples/scenarios/churn_quick.txt"
    );
    let text = std::fs::read_to_string(path).expect("committed scenario script exists");
    let scenario = Scenario::parse(&text).expect("script parses");
    scenario.validate(100).expect("script fits 100 hosts");
    println!(
        "scenario '{}': {} churn events, {} blackouts, {} noise bursts, {} partitions",
        scenario.name,
        scenario.churn.len(),
        scenario.blackouts.len(),
        scenario.noise.len(),
        scenario.partitions.len(),
    );
    println!();

    let schemes = [
        SchemeSpec::Flooding,
        SchemeSpec::Counter(3),
        SchemeSpec::AdaptiveCounter(CounterThreshold::paper_recommended()),
        SchemeSpec::NeighborCoverage,
    ];
    println!("3x3 map, 100 hosts, 120 broadcasts — calm vs. scripted churn:");
    for scheme in &schemes {
        let calm = run(scheme.clone(), None, 11);
        let churned = run(scheme.clone(), Some(&scenario), 11);
        let sc = churned.scenario.as_ref().expect("scenario counters");
        println!(
            "  {:<10} RE {:>5.1}% -> {:>5.1}%   SRB {:>5.1}% -> {:>5.1}%   \
             scripted drops: {} blackout, {} partition, {} noise",
            scheme.label(),
            calm.reachability * 100.0,
            churned.reachability * 100.0,
            calm.saved_rebroadcasts * 100.0,
            churned.saved_rebroadcasts * 100.0,
            sc.blackout_drops,
            sc.partition_drops,
            sc.noise_drops,
        );
    }

    // Same script + same seed = the same storm, bit for bit.
    let a = run(schemes[2].clone(), Some(&scenario), 42);
    let b = run(schemes[2].clone(), Some(&scenario), 42);
    assert_eq!(a.reachability, b.reachability);
    assert_eq!(a.losses, b.losses);
    assert_eq!(a.scenario, b.scenario);
    println!();
    println!("determinism check passed: identical reports for identical (scenario, seed)");
}
