//! Route-discovery scenario: broadcast as the substrate of on-demand
//! routing.
//!
//! MANET routing protocols (DSR, AODV, ZRP, CBRP — refs [2], [8], [10],
//! [18] of the paper) discover routes by **broadcasting** a route_request
//! packet and letting rebroadcasts flood it toward the destination. Every
//! redundant rebroadcast is pure overhead, and every collision can make a
//! discovery fail — which is exactly the broadcast storm the paper
//! attacks.
//!
//! This example treats each simulated broadcast as a route request and
//! compares schemes by:
//!
//! * **discovery rate** — how often the request reaches *every* reachable
//!   host (a superset of reaching any particular destination),
//! * **expected destination coverage** — the probability a random
//!   reachable destination hears the request (= RE),
//! * **cost** — transmitted route-request frames per discovery.
//!
//! ```text
//! cargo run --release --example route_discovery
//! ```

use manet_broadcast::{AreaThreshold, CounterThreshold, SchemeSpec, SimConfig, World};

fn run(map_units: u32, scheme: SchemeSpec) {
    let config = SimConfig::builder(map_units, scheme)
        .broadcasts(100)
        .seed(777)
        .build();
    let label = config.scheme.label();
    let report = World::new(config).run();
    let full_coverage = report
        .per_broadcast
        .iter()
        .filter(|o| o.reachable > 0 && o.received >= o.reachable)
        .count();
    let defined = report
        .per_broadcast
        .iter()
        .filter(|o| o.reachable > 0)
        .count()
        .max(1);
    println!(
        "  {label:<10} discovery {:>5.1}%   dest coverage {:>5.1}%   frames/request {:>6.1}",
        100.0 * full_coverage as f64 / defined as f64,
        report.reachability * 100.0,
        report.data_frames as f64 / report.broadcasts as f64,
    );
}

fn main() {
    let schemes = || {
        [
            SchemeSpec::Flooding,
            SchemeSpec::Counter(2),
            SchemeSpec::AdaptiveCounter(CounterThreshold::paper_recommended()),
            SchemeSpec::AdaptiveLocation(AreaThreshold::paper_recommended()),
            SchemeSpec::NeighborCoverage,
        ]
    };
    println!("route discovery on a dense campus (3x3 map):");
    for scheme in schemes() {
        run(3, scheme);
    }
    println!();
    println!("route discovery on a sparse region (9x9 map):");
    for scheme in schemes() {
        run(9, scheme);
    }
    println!();
    println!("reading: on the dense map the adaptive schemes cut route-request");
    println!("traffic several-fold at equal discovery rates; on the sparse map they");
    println!("keep discovery high where aggressive fixed suppression (C=2) fails.");
}
