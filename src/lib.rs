//! # manet-broadcast
//!
//! Facade crate for the MANET broadcast-storm suite — a Rust reproduction
//! of *"Adaptive Approaches to Relieving Broadcast Storms in a Wireless
//! Multihop Mobile Ad Hoc Network"* (Tseng, Ni, Shih; ICDCS 2001 /
//! IEEE ToC 2003).
//!
//! Re-exports the public API of every layer so applications can depend on
//! one crate:
//!
//! * [`core`] — schemes, thresholds, simulation world, metrics.
//! * [`engine`] — the discrete-event engine.
//! * [`geom`] — coverage geometry and the storm analyses.
//! * [`mobility`] — maps and the random-turn roaming model.
//! * [`phy`] — the radio medium and unit-disk topology.
//! * [`mac`] — the IEEE 802.11 DCF broadcast MAC.
//! * [`net`] — HELLO beaconing and neighbor tables.
//! * [`campaign`] — the `manet-sim serve` campaign job service.
//!
//! The most common entry points are re-exported at the top level.
//!
//! # Examples
//!
//! ```
//! use manet_broadcast::{SchemeSpec, SimConfig, World};
//!
//! let report = World::new(
//!     SimConfig::builder(3, SchemeSpec::Counter(3))
//!         .hosts(25)
//!         .broadcasts(5)
//!         .seed(1)
//!         .build(),
//! )
//! .run();
//! assert!(report.reachability > 0.5);
//! ```

pub use broadcast_core as core;
pub use manet_campaign as campaign;
pub use manet_geom as geom;
pub use manet_mac as mac;
pub use manet_mobility as mobility;
pub use manet_net as net;
pub use manet_phy as phy;
pub use manet_sim_engine as engine;

pub use broadcast_core::{
    AreaThreshold, CaptureConfig, ChurnKind, CounterThreshold, DescentShape, LatencySummary,
    MobilitySpec, NeighborInfo, PacketId, PlacementSpec, Region, Scenario, ScenarioCounts,
    ScenarioError, SchemeSpec, SimConfig, SimReport, World, WorldAction,
};
pub use manet_net::{DynamicHelloParams, HelloIntervalPolicy};
pub use manet_phy::NodeId;
pub use manet_sim_engine::{SimDuration, SimTime};
