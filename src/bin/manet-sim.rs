//! `manet-sim` — run one MANET broadcast simulation from the command
//! line.
//!
//! ```text
//! manet-sim --map 5 --scheme ac --broadcasts 500 --seed 42
//! manet-sim --map 9 --scheme nc --hello dynamic --speed 60
//! manet-sim --map 3 --scheme location:0.0134 --capture --per-broadcast out.csv
//! manet-sim --help
//! ```

use std::fmt::Write as _;
use std::process::ExitCode;

use manet_broadcast::campaign::{serve, ServerConfig};
use manet_broadcast::core::trace::NoopObserver;
use manet_broadcast::{
    CaptureConfig, DynamicHelloParams, HelloIntervalPolicy, MobilitySpec, NeighborInfo, Scenario,
    SchemeSpec, SimConfig, SimDuration, SimTime, World,
};

const USAGE: &str = "\
usage: manet-sim [options]

options:
  --map N               square map side in 500 m units (default 5)
  --hosts N             number of hosts (default 100)
  --broadcasts N        broadcast requests (default 200)
  --seed N              RNG seed (default 1)
  --speed KMH           max roaming speed; default = paper's per-map value
  --scheme S            flooding | counter:C | ac | distance:D |
                        location:A | al | nc        (default ac)
  --hello P             fixed seconds (e.g. 1) | dynamic | oracle
                        (default: fixed 1 s beacons)
  --mobility M          turn | waypoint | none      (default turn)
  --capture             enable 10 dB physical-layer capture
  --drop P              inject per-delivery loss probability P
  --scenario FILE       replay a churn/fault script (manet-scenario/1,
                        text or JSON); its host count is the default
                        when --hosts is not given
  --per-broadcast FILE  write per-broadcast outcomes as CSV
  --metrics FILE        write run counters and histograms as JSON
                        (schema manet-broadcast-metrics/1)
  --shards N            spatial strips for sharded execution (default 1;
                        clamped so every strip spans >= one radio radius;
                        results are bit-identical for any N)
  --parallel-epochs     drain the shard queues concurrently in epochs
                        bounded by the carrier-sense horizon; same
                        decisions and counts as sequential, but event
                        interleaving (and so byte-identity) is waived
  --workers N           pool threads for sharded execution (default:
                        cores - 1, capped by the shard count; 0 forces
                        inline); execution-only, never changes results
  --profile             measure event-loop wall time per event kind
  --snapshot-at T_NS    pause at T_NS simulated nanoseconds, write a
                        checkpoint (requires --snapshot-out), continue
  --snapshot-out FILE   checkpoint destination for --snapshot-at
  --resume FILE         resume a checkpoint written by --snapshot-out;
                        the other options must rebuild the same config
  --record TRACE        record every dispatched action to TRACE (MTRC)
  --replay TRACE        replay TRACE through the pure models alone and
                        verify every recorded decision (standalone mode)
  -h, --help            show this help

subcommands:
  serve                 run as a campaign job server (manet-sim serve
                        --help for its options)
";

const SERVE_USAGE: &str = "\
usage: manet-sim serve [options]

Runs the campaign job server: clients submit campaigns of scenario jobs
over the MCMP v1 binary protocol and stream back per-job metrics
documents as they complete (see manet-client).

options:
  --pipe                serve one session on stdin/stdout (default);
                        all human-readable output goes to stderr
  --socket PATH         listen on a Unix socket instead, serving
                        connections until a client sends Shutdown
  --workers N           scheduler pool threads (default: cores - 1;
                        0 runs jobs inline)
  --queue-capacity N    max queued jobs across campaigns (default 65536)
  -h, --help            show this help
";

/// Everything parsed from the command line.
#[derive(Debug)]
struct Options {
    config: SimConfig,
    per_broadcast: Option<String>,
    metrics: Option<String>,
    snapshot_at: Option<u64>,
    snapshot_out: Option<String>,
    resume: Option<String>,
    record: Option<String>,
    replay: Option<String>,
}

fn parse_scheme(s: &str) -> Result<SchemeSpec, String> {
    SchemeSpec::parse(s)
}

fn parse_hello(s: &str) -> Result<NeighborInfo, String> {
    match s {
        "dynamic" => Ok(NeighborInfo::Hello(HelloIntervalPolicy::Dynamic(
            DynamicHelloParams::paper(),
        ))),
        "oracle" => Ok(NeighborInfo::Oracle),
        seconds => seconds
            .parse::<f64>()
            .ok()
            .filter(|v| v.is_finite() && *v > 0.0)
            .map(|v| NeighborInfo::Hello(HelloIntervalPolicy::Fixed(SimDuration::from_secs_f64(v))))
            .ok_or_else(|| format!("bad hello policy '{seconds}' (seconds | dynamic | oracle)")),
    }
}

fn parse_mobility(s: &str) -> Result<MobilitySpec, String> {
    match s {
        "turn" => Ok(MobilitySpec::RandomTurn),
        "waypoint" => Ok(MobilitySpec::RandomWaypoint),
        "none" => Ok(MobilitySpec::Stationary),
        other => Err(format!(
            "unknown mobility '{other}' (turn | waypoint | none)"
        )),
    }
}

fn parse_args(args: &[String]) -> Result<Option<Options>, String> {
    let mut map = 5u32;
    let mut hosts: Option<u32> = None;
    let mut broadcasts = 200u32;
    let mut seed = 1u64;
    let mut speed: Option<f64> = None;
    let mut scheme = "ac".to_string();
    let mut hello: Option<String> = None;
    let mut mobility = "turn".to_string();
    let mut capture = false;
    let mut drop = 0.0f64;
    let mut scenario_path: Option<String> = None;
    let mut per_broadcast = None;
    let mut metrics = None;
    let mut profile = false;
    let mut shards = 1u32;
    let mut parallel_epochs = false;
    let mut workers: Option<u32> = None;
    let mut snapshot_at: Option<u64> = None;
    let mut snapshot_out: Option<String> = None;
    let mut resume: Option<String> = None;
    let mut record: Option<String> = None;
    let mut replay: Option<String> = None;

    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let mut value = |name: &str| {
            iter.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--map" => {
                map = value("--map")?
                    .parse()
                    .map_err(|e| format!("bad --map: {e}"))?
            }
            "--hosts" => {
                hosts = Some(
                    value("--hosts")?
                        .parse()
                        .map_err(|e| format!("bad --hosts: {e}"))?,
                )
            }
            "--broadcasts" => {
                broadcasts = value("--broadcasts")?
                    .parse()
                    .map_err(|e| format!("bad --broadcasts: {e}"))?
            }
            "--seed" => {
                seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("bad --seed: {e}"))?
            }
            "--speed" => {
                speed = Some(
                    value("--speed")?
                        .parse()
                        .map_err(|e| format!("bad --speed: {e}"))?,
                )
            }
            "--scheme" => scheme = value("--scheme")?,
            "--hello" => hello = Some(value("--hello")?),
            "--mobility" => mobility = value("--mobility")?,
            "--capture" => capture = true,
            "--drop" => {
                drop = value("--drop")?
                    .parse()
                    .map_err(|e| format!("bad --drop: {e}"))?
            }
            "--scenario" => scenario_path = Some(value("--scenario")?),
            "--per-broadcast" => per_broadcast = Some(value("--per-broadcast")?),
            "--metrics" => metrics = Some(value("--metrics")?),
            "--profile" => profile = true,
            "--shards" => {
                shards = value("--shards")?
                    .parse()
                    .map_err(|e| format!("bad --shards: {e}"))?;
                if shards == 0 {
                    return Err("bad --shards: need at least one shard".into());
                }
            }
            "--parallel-epochs" => parallel_epochs = true,
            "--workers" => {
                workers = Some(
                    value("--workers")?
                        .parse()
                        .map_err(|e| format!("bad --workers: {e}"))?,
                )
            }
            "--snapshot-at" => {
                snapshot_at = Some(
                    value("--snapshot-at")?
                        .parse()
                        .map_err(|e| format!("bad --snapshot-at: {e}"))?,
                )
            }
            "--snapshot-out" => snapshot_out = Some(value("--snapshot-out")?),
            "--resume" => resume = Some(value("--resume")?),
            "--record" => record = Some(value("--record")?),
            "--replay" => replay = Some(value("--replay")?),
            "-h" | "--help" => return Ok(None),
            other => return Err(format!("unknown option '{other}'")),
        }
    }

    let scenario = match &scenario_path {
        Some(path) => {
            let input = std::fs::read_to_string(path)
                .map_err(|e| format!("cannot read scenario {path}: {e}"))?;
            Some(Scenario::parse(&input).map_err(|e| format!("bad scenario {path}: {e}"))?)
        }
        None => None,
    };
    // Population: explicit --hosts, then the host count the scenario script
    // declares, then the paper's 100. A script's `hosts` line is a contract,
    // so a conflicting --hosts is an error (caught here for a clean message
    // rather than a panic out of SimConfig::build).
    let hosts = hosts
        .or_else(|| scenario.as_ref().and_then(|s| s.hosts))
        .unwrap_or(100);
    if let Some(scenario) = &scenario {
        scenario
            .validate(hosts)
            .map_err(|e| format!("bad scenario: {e}"))?;
    }

    let mut builder = SimConfig::builder(map, parse_scheme(&scheme)?)
        .hosts(hosts)
        .broadcasts(broadcasts)
        .seed(seed)
        .mobility(parse_mobility(&mobility)?)
        .drop_probability(drop)
        .profile_events(profile)
        .shards(shards)
        .parallel_epochs(parallel_epochs);
    if let Some(workers) = workers {
        builder = builder.workers(workers);
    }
    if let Some(scenario) = scenario {
        builder = builder.scenario(scenario);
    }
    if let Some(kmh) = speed {
        builder = builder.max_speed_kmh(kmh);
    }
    if let Some(policy) = hello {
        builder = builder.neighbor_info(parse_hello(&policy)?);
    }
    if capture {
        builder = builder.capture(CaptureConfig::typical());
    }
    // Checkpoint/trace flag consistency. --replay is a standalone mode
    // (the trace embeds its own replay config); a recording must cover a
    // whole run to be replayable, so it cannot start from a checkpoint.
    if replay.is_some()
        && (record.is_some() || resume.is_some() || snapshot_at.is_some() || snapshot_out.is_some())
    {
        return Err("--replay is standalone; drop the snapshot/record flags".into());
    }
    if snapshot_at.is_some() != snapshot_out.is_some() {
        return Err("--snapshot-at and --snapshot-out go together".into());
    }
    if record.is_some() && resume.is_some() {
        return Err("--record cannot start from --resume: a trace must cover a whole run".into());
    }

    let config = builder.build();
    config.validate()?;
    Ok(Some(Options {
        config,
        per_broadcast,
        metrics,
        snapshot_at,
        snapshot_out,
        resume,
        record,
        replay,
    }))
}

fn per_broadcast_csv(report: &manet_broadcast::SimReport) -> String {
    let mut out = String::from("packet,reachable,received,rebroadcast,re,srb,latency_s\n");
    for o in &report.per_broadcast {
        let _ = writeln!(
            out,
            "{},{},{},{},{},{},{:.6}",
            o.packet,
            o.reachable,
            o.received,
            o.rebroadcast,
            o.reachability.map_or("-".into(), |v| format!("{v:.4}")),
            o.saved_rebroadcasts
                .map_or("-".into(), |v| format!("{v:.4}")),
            o.latency.as_secs_f64(),
        );
    }
    out
}

/// Serve-mode options: the transport plus the server's tuning knobs.
#[derive(Debug)]
struct ServeOptions {
    socket: Option<String>,
    config: ServerConfig,
}

fn parse_serve_args(args: &[String]) -> Result<Option<ServeOptions>, String> {
    let mut socket: Option<String> = None;
    let mut config = ServerConfig::default();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let mut value = |name: &str| {
            iter.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--pipe" => socket = None,
            "--socket" => socket = Some(value("--socket")?),
            "--workers" => {
                config.workers = Some(
                    value("--workers")?
                        .parse()
                        .map_err(|e| format!("bad --workers: {e}"))?,
                )
            }
            "--queue-capacity" => {
                config.queue_capacity = value("--queue-capacity")?
                    .parse()
                    .map_err(|e| format!("bad --queue-capacity: {e}"))?;
                if config.queue_capacity == 0 {
                    return Err("bad --queue-capacity: need room for at least one job".into());
                }
            }
            "-h" | "--help" => return Ok(None),
            other => return Err(format!("unknown option '{other}'")),
        }
    }
    Ok(Some(ServeOptions { socket, config }))
}

fn serve_main(args: &[String]) -> ExitCode {
    let options = match parse_serve_args(args) {
        Ok(Some(options)) => options,
        Ok(None) => {
            println!("{SERVE_USAGE}");
            return ExitCode::SUCCESS;
        }
        Err(message) => {
            eprintln!("error: {message}\n\n{SERVE_USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let result = match &options.socket {
        Some(path) => {
            manet_broadcast::campaign::serve_unix(std::path::Path::new(path), &options.config)
        }
        None => {
            // Pipe mode: stdout carries MCMP frames, so every human-facing
            // line goes to stderr.
            serve(std::io::stdin(), std::io::stdout(), &options.config).map(|summary| {
                eprintln!(
                    "manet-sim serve: session done: {} campaigns, {} jobs ({} completed, {} cancelled, {} failed)",
                    summary.campaigns,
                    summary.jobs.total,
                    summary.jobs.completed,
                    summary.jobs.cancelled,
                    summary.jobs.failed,
                );
            })
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(err) => {
            eprintln!("error: {err}");
            ExitCode::FAILURE
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("serve") {
        return serve_main(&args[1..]);
    }
    let options = match parse_args(&args) {
        Ok(Some(options)) => options,
        Ok(None) => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Err(message) => {
            eprintln!("error: {message}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };

    // Standalone replay: no simulation, just the pure models re-deriving
    // and verifying the recorded decision stream.
    if let Some(path) = &options.replay {
        let bytes = match std::fs::read(path) {
            Ok(bytes) => bytes,
            Err(err) => {
                eprintln!("error: cannot read {path}: {err}");
                return ExitCode::FAILURE;
            }
        };
        match manet_broadcast::core::replay_decisions(&bytes) {
            Ok(summary) => {
                println!(
                    "replay ok: {} actions, {} decisions verified",
                    summary.actions, summary.decisions
                );
                return ExitCode::SUCCESS;
            }
            Err(err) => {
                eprintln!("error: {err}");
                return ExitCode::FAILURE;
            }
        }
    }

    let config = options.config;
    println!(
        "map {}x{}  hosts {}  scheme {}  broadcasts {}  seed {}",
        config.map_units,
        config.map_units,
        config.hosts,
        config.scheme.label(),
        config.broadcasts,
        config.seed,
    );

    let mut world = match &options.resume {
        Some(path) => {
            let bytes = match std::fs::read(path) {
                Ok(bytes) => bytes,
                Err(err) => {
                    eprintln!("error: cannot read {path}: {err}");
                    return ExitCode::FAILURE;
                }
            };
            match World::resume(config, &bytes) {
                Ok(world) => {
                    println!("resumed checkpoint {path}");
                    world
                }
                Err(err) => {
                    eprintln!("error: cannot resume {path}: {err}");
                    return ExitCode::FAILURE;
                }
            }
        }
        None => World::new(config),
    };
    if options.record.is_some() {
        world.enable_recording();
    }
    if let (Some(at), Some(out)) = (options.snapshot_at, &options.snapshot_out) {
        world.advance_until(SimTime::from_nanos(at), &mut NoopObserver);
        if let Err(err) = std::fs::write(out, world.snapshot()) {
            eprintln!("error: cannot write {out}: {err}");
            return ExitCode::FAILURE;
        }
        println!("checkpoint at {at} ns written to {out}");
    }
    world.advance_until(SimTime::MAX, &mut NoopObserver);
    let trace = world.take_trace();
    let report = world.into_report();
    if let Some(path) = &options.record {
        let trace = trace.expect("recording was armed");
        if let Err(err) = std::fs::write(path, trace) {
            eprintln!("error: cannot write {path}: {err}");
            return ExitCode::FAILURE;
        }
        println!("action trace written to {path}");
    }
    let latency = report.latency_summary();
    println!();
    println!(
        "reachability (RE)         {:>6.2}%",
        report.reachability * 100.0
    );
    println!(
        "saved rebroadcasts (SRB)  {:>6.2}%",
        report.saved_rebroadcasts * 100.0
    );
    println!(
        "latency mean/p50/p95/max  {:.4} / {:.4} / {:.4} / {:.4} s",
        latency.mean_s, latency.p50_s, latency.p95_s, latency.max_s
    );
    println!(
        "frames: {} data, {} hello; {} collisions over {:.0} simulated s",
        report.data_frames, report.hello_packets, report.collisions, report.sim_seconds
    );
    println!(
        "losses: {} overlap, {} capture, {} half-duplex, {} injected",
        report.losses.overlap,
        report.losses.capture,
        report.losses.half_duplex,
        report.losses.injected
    );
    if let Some(sc) = &report.scenario {
        println!(
            "scenario: {} leaves, {} joins, {} crashes, {} recoveries",
            sc.leaves, sc.joins, sc.crashes, sc.recoveries
        );
        println!(
            "scenario drops: {} blackout, {} partition, {} noise",
            sc.blackout_drops, sc.partition_drops, sc.noise_drops
        );
    }

    if let Some(profile) = &report.profile {
        println!();
        println!("event loop: {} events", profile.events);
        for kind in &profile.kinds {
            println!(
                "  {:<16} {:>9} events  {:>10} ns total  {:>7.0} ns mean  {:>8} ns max",
                kind.kind,
                kind.count,
                kind.total_ns,
                kind.mean_ns(),
                kind.max_ns
            );
        }
    }

    if let Some(path) = options.per_broadcast {
        if let Err(err) = std::fs::write(&path, per_broadcast_csv(&report)) {
            eprintln!("error: cannot write {path}: {err}");
            return ExitCode::FAILURE;
        }
        println!("per-broadcast outcomes written to {path}");
    }

    if let Some(path) = options.metrics {
        // The same schema manet-experiments emits, with this one run as a
        // single-record "figure" so downstream tooling needs no special
        // case for single runs.
        let record = manet_experiments::metrics_record(std::slice::from_ref(&report));
        let json =
            manet_experiments::render_metrics_json("single", &[("manet-sim".into(), vec![record])]);
        if let Err(err) = std::fs::write(&path, json) {
            eprintln!("error: cannot write {path}: {err}");
            return ExitCode::FAILURE;
        }
        println!("run metrics written to {path}");
    }
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn default_arguments_parse() {
        let options = parse_args(&[]).expect("parses").expect("not help");
        assert_eq!(options.config.map_units, 5);
        assert_eq!(options.config.scheme.label(), "AC");
    }

    #[test]
    fn parameterized_schemes_parse() {
        assert_eq!(parse_scheme("counter:4").unwrap().label(), "C=4");
        assert_eq!(parse_scheme("location:0.0134").unwrap().label(), "A=0.0134");
        assert_eq!(parse_scheme("distance:250").unwrap().label(), "D=250");
        assert!(parse_scheme("bogus").is_err());
        assert!(parse_scheme("counter:x").is_err());
    }

    #[test]
    fn hello_policies_parse() {
        assert_eq!(parse_hello("oracle").unwrap(), NeighborInfo::Oracle);
        assert!(matches!(
            parse_hello("dynamic").unwrap(),
            NeighborInfo::Hello(HelloIntervalPolicy::Dynamic(_))
        ));
        assert!(matches!(
            parse_hello("2.5").unwrap(),
            NeighborInfo::Hello(HelloIntervalPolicy::Fixed(d))
                if d == SimDuration::from_millis(2_500)
        ));
        assert!(parse_hello("-1").is_err());
        assert!(parse_hello("sometimes").is_err());
    }

    #[test]
    fn full_command_line_parses() {
        let options = parse_args(&args(&[
            "--map",
            "9",
            "--hosts",
            "50",
            "--scheme",
            "nc",
            "--hello",
            "dynamic",
            "--speed",
            "60",
            "--mobility",
            "waypoint",
            "--capture",
            "--drop",
            "0.1",
            "--broadcasts",
            "10",
            "--seed",
            "7",
        ]))
        .expect("parses")
        .expect("not help");
        let c = &options.config;
        assert_eq!(c.map_units, 9);
        assert_eq!(c.hosts, 50);
        assert_eq!(c.scheme.label(), "NC");
        assert_eq!(c.mobility, MobilitySpec::RandomWaypoint);
        assert!(c.capture.is_some());
        assert_eq!(c.drop_probability, 0.1);
        assert_eq!(c.effective_max_speed_kmh(), 60.0);
    }

    #[test]
    fn shards_flag_parses() {
        let options = parse_args(&args(&["--shards", "4"]))
            .expect("parses")
            .expect("not help");
        assert_eq!(options.config.shards, 4);
        assert!(!options.config.parallel_epochs, "default is sequential");
        let options = parse_args(&args(&["--shards", "8", "--parallel-epochs"]))
            .expect("parses")
            .expect("not help");
        assert!(options.config.parallel_epochs);
        assert!(parse_args(&args(&["--shards", "x"])).is_err());
        assert!(
            parse_args(&args(&["--shards", "0"])).is_err(),
            "zero shards rejected at parse time"
        );
    }

    #[test]
    fn workers_flag_parses() {
        let options = parse_args(&args(&["--shards", "4", "--workers", "2"]))
            .expect("parses")
            .expect("not help");
        assert_eq!(options.config.workers, Some(2));
        let options = parse_args(&[]).expect("parses").expect("not help");
        assert_eq!(options.config.workers, None, "default auto-detects");
        assert!(parse_args(&args(&["--workers", "x"])).is_err());
    }

    #[test]
    fn serve_arguments_parse() {
        let options = parse_serve_args(&[]).expect("parses").expect("not help");
        assert!(options.socket.is_none(), "pipe mode is the default");
        assert_eq!(options.config.workers, None);
        assert_eq!(options.config.queue_capacity, 65_536);

        let options = parse_serve_args(&args(&[
            "--socket",
            "/tmp/manet.sock",
            "--workers",
            "3",
            "--queue-capacity",
            "128",
        ]))
        .expect("parses")
        .expect("not help");
        assert_eq!(options.socket.as_deref(), Some("/tmp/manet.sock"));
        assert_eq!(options.config.workers, Some(3));
        assert_eq!(options.config.queue_capacity, 128);

        assert!(parse_serve_args(&args(&["--help"])).unwrap().is_none());
        assert!(parse_serve_args(&args(&["--queue-capacity", "0"])).is_err());
        assert!(parse_serve_args(&args(&["--map", "5"])).is_err());
    }

    #[test]
    fn metrics_flag_parses() {
        let options = parse_args(&args(&["--metrics", "out.json"]))
            .expect("parses")
            .expect("not help");
        assert_eq!(options.metrics.as_deref(), Some("out.json"));
        assert!(parse_args(&args(&["--metrics"])).is_err(), "missing value");
    }

    #[test]
    fn scenario_flag_loads_script_and_defaults_hosts() {
        let path = std::env::temp_dir().join("manet_sim_test_scenario.txt");
        std::fs::write(
            &path,
            "manet-scenario/1\nname cli-test\nhosts 42\nat 1 crash 3\nat 2 recover 3\n",
        )
        .unwrap();
        let options = parse_args(&args(&["--scenario", path.to_str().unwrap()]))
            .expect("parses")
            .expect("not help");
        assert_eq!(
            options.config.hosts, 42,
            "scenario host count is the default"
        );
        assert!(options.config.scenario.is_some());

        // A matching --hosts is fine; a conflicting one is a clean error
        // (the script's `hosts` line is a contract, not a default).
        let options = parse_args(&args(&[
            "--scenario",
            path.to_str().unwrap(),
            "--hosts",
            "42",
        ]))
        .expect("parses")
        .expect("not help");
        assert_eq!(options.config.hosts, 42);
        let err = parse_args(&args(&[
            "--scenario",
            path.to_str().unwrap(),
            "--hosts",
            "50",
        ]))
        .expect_err("conflicting --hosts is rejected");
        assert!(err.contains("42 hosts"), "{err}");
        std::fs::remove_file(&path).ok();

        assert!(parse_args(&args(&["--scenario", "/nonexistent/sc.txt"])).is_err());
    }

    #[test]
    fn checkpoint_and_trace_flags_parse() {
        let options = parse_args(&args(&[
            "--snapshot-at",
            "5000000000",
            "--snapshot-out",
            "w.snap",
            "--record",
            "run.mtrc",
        ]))
        .expect("parses")
        .expect("not help");
        assert_eq!(options.snapshot_at, Some(5_000_000_000));
        assert_eq!(options.snapshot_out.as_deref(), Some("w.snap"));
        assert_eq!(options.record.as_deref(), Some("run.mtrc"));

        let options = parse_args(&args(&["--resume", "w.snap"]))
            .expect("parses")
            .expect("not help");
        assert_eq!(options.resume.as_deref(), Some("w.snap"));

        let options = parse_args(&args(&["--replay", "run.mtrc"]))
            .expect("parses")
            .expect("not help");
        assert_eq!(options.replay.as_deref(), Some("run.mtrc"));
    }

    #[test]
    fn inconsistent_checkpoint_flags_are_rejected() {
        // --snapshot-at and --snapshot-out only make sense together.
        assert!(parse_args(&args(&["--snapshot-at", "1"])).is_err());
        assert!(parse_args(&args(&["--snapshot-out", "w.snap"])).is_err());
        // A trace must cover a whole run.
        assert!(parse_args(&args(&["--record", "t", "--resume", "w"])).is_err());
        // Replay is standalone.
        assert!(parse_args(&args(&["--replay", "t", "--record", "t2"])).is_err());
        assert!(parse_args(&args(&["--replay", "t", "--resume", "w"])).is_err());
        assert!(parse_args(&args(&["--snapshot-at", "x", "--snapshot-out", "w"])).is_err());
    }

    #[test]
    fn help_short_circuits() {
        assert!(parse_args(&args(&["--help"])).unwrap().is_none());
    }

    #[test]
    fn unknown_option_errors() {
        assert!(parse_args(&args(&["--frobnicate"])).is_err());
        assert!(parse_args(&args(&["--map"])).is_err(), "missing value");
    }

    #[test]
    fn per_broadcast_csv_shape() {
        let config = SimConfig::builder(3, SchemeSpec::Flooding)
            .hosts(10)
            .broadcasts(2)
            .seed(3)
            .build();
        let report = World::new(config).run();
        let csv = per_broadcast_csv(&report);
        assert_eq!(csv.lines().count(), 3, "header + 2 broadcasts");
        assert!(csv.starts_with("packet,reachable"));
    }
}
