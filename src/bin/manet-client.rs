//! `manet-client` — submit a campaign to `manet-sim serve` and stream
//! the results.
//!
//! ```text
//! manet-client --campaign examples/campaigns/bakeoff_quick.txt --out results/
//! manet-client --campaign sweep.txt --socket /tmp/manet.sock
//! manet-client --campaign sweep.txt --cancel-after 5 --out partial/
//! ```
//!
//! By default the client spawns its sibling `manet-sim` binary in
//! `serve --pipe` mode and talks MCMP over the child's stdin/stdout, so
//! a single command runs a whole campaign with no setup. `--socket`
//! connects to an already-running server instead. Each completed job's
//! `manet-broadcast-metrics/1` document lands in `<out>/<label>.json`
//! the moment it streams in.

use std::path::PathBuf;
use std::process::ExitCode;

use manet_broadcast::campaign::{load_campaign, run_session, ClientReport, SessionOptions};

const USAGE: &str = "\
usage: manet-client --campaign FILE [options]

options:
  --campaign FILE       campaign script to submit (manet-campaign/1);
                        scenario paths resolve relative to this file
  --out DIR             directory for per-job metrics JSONs
                        (default campaign-out)
  --socket PATH         connect to a manet-sim serve Unix socket instead
                        of spawning a server
  --server CMD          server binary to spawn in pipe mode (default:
                        the manet-sim next to this executable)
  --workers N           forwarded to the spawned server
  --queue-capacity N    forwarded to the spawned server
  --cancel-after N      send a cancel once N job results have arrived
                        (drains in-flight jobs, flushes partial results)
  --quiet               suppress per-job progress on stderr
  -h, --help            show this help
";

#[derive(Debug)]
struct Options {
    campaign: PathBuf,
    session: SessionOptions,
    socket: Option<String>,
    server: Option<String>,
    workers: Option<u32>,
    queue_capacity: Option<u32>,
}

fn parse_args(args: &[String]) -> Result<Option<Options>, String> {
    let mut campaign: Option<PathBuf> = None;
    let mut out_dir = PathBuf::from("campaign-out");
    let mut socket: Option<String> = None;
    let mut server: Option<String> = None;
    let mut workers: Option<u32> = None;
    let mut queue_capacity: Option<u32> = None;
    let mut cancel_after: Option<u64> = None;
    let mut quiet = false;

    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let mut value = |name: &str| {
            iter.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--campaign" => campaign = Some(PathBuf::from(value("--campaign")?)),
            "--out" => out_dir = PathBuf::from(value("--out")?),
            "--socket" => socket = Some(value("--socket")?),
            "--server" => server = Some(value("--server")?),
            "--workers" => {
                workers = Some(
                    value("--workers")?
                        .parse()
                        .map_err(|e| format!("bad --workers: {e}"))?,
                )
            }
            "--queue-capacity" => {
                queue_capacity = Some(
                    value("--queue-capacity")?
                        .parse()
                        .map_err(|e| format!("bad --queue-capacity: {e}"))?,
                )
            }
            "--cancel-after" => {
                cancel_after = Some(
                    value("--cancel-after")?
                        .parse()
                        .map_err(|e| format!("bad --cancel-after: {e}"))?,
                )
            }
            "--quiet" => quiet = true,
            "-h" | "--help" => return Ok(None),
            other => return Err(format!("unknown option '{other}'")),
        }
    }
    let campaign = campaign.ok_or("--campaign is required")?;
    if socket.is_some() && (server.is_some() || workers.is_some() || queue_capacity.is_some()) {
        return Err("--socket connects to a running server; drop the spawn flags".into());
    }
    Ok(Some(Options {
        campaign,
        session: SessionOptions {
            out_dir,
            cancel_after,
            quiet,
        },
        socket,
        server,
        workers,
        queue_capacity,
    }))
}

/// The manet-sim binary shipped next to this one — the default server.
fn sibling_server() -> Result<PathBuf, String> {
    let me = std::env::current_exe().map_err(|e| format!("cannot locate this binary: {e}"))?;
    let dir = me.parent().ok_or("cannot locate this binary's directory")?;
    let sibling = dir.join(format!("manet-sim{}", std::env::consts::EXE_SUFFIX));
    if sibling.is_file() {
        Ok(sibling)
    } else {
        Err(format!(
            "no manet-sim next to this binary ({}); pass --server or --socket",
            sibling.display()
        ))
    }
}

fn run(options: &Options) -> Result<ClientReport, String> {
    let (name, jobs) = load_campaign(&options.campaign)
        .map_err(|e| format!("{}: {e}", options.campaign.display()))?;
    if !options.session.quiet {
        eprintln!("manet-client: submitting '{name}' ({} jobs)", jobs.len());
    }

    if let Some(path) = &options.socket {
        let stream = std::os::unix::net::UnixStream::connect(path)
            .map_err(|e| format!("cannot connect to {path}: {e}"))?;
        let input = stream
            .try_clone()
            .map_err(|e| format!("cannot clone socket: {e}"))?;
        return run_session(input, stream, &name, jobs, &options.session)
            .map_err(|e| e.to_string());
    }

    let server = match &options.server {
        Some(cmd) => PathBuf::from(cmd),
        None => sibling_server()?,
    };
    let mut command = std::process::Command::new(&server);
    command.arg("serve").arg("--pipe");
    if let Some(workers) = options.workers {
        command.arg("--workers").arg(workers.to_string());
    }
    if let Some(capacity) = options.queue_capacity {
        command.arg("--queue-capacity").arg(capacity.to_string());
    }
    let mut child = command
        .stdin(std::process::Stdio::piped())
        .stdout(std::process::Stdio::piped())
        .spawn()
        .map_err(|e| format!("cannot spawn {}: {e}", server.display()))?;
    let child_stdin = child.stdin.take().expect("piped stdin");
    let child_stdout = child.stdout.take().expect("piped stdout");

    let report = run_session(child_stdout, child_stdin, &name, jobs, &options.session);
    let status = child
        .wait()
        .map_err(|e| format!("server did not exit: {e}"))?;
    let report = report.map_err(|e| e.to_string())?;
    if !status.success() {
        return Err(format!("server exited with {status}"));
    }
    Ok(report)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let options = match parse_args(&args) {
        Ok(Some(options)) => options,
        Ok(None) => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Err(message) => {
            eprintln!("error: {message}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    match run(&options) {
        Ok(report) => {
            println!(
                "campaign #{}: {} completed, {} cancelled, {} failed; {} metrics files in {}",
                report.campaign,
                report.counts.completed,
                report.counts.cancelled,
                report.counts.failed,
                report.metrics_written,
                options.session.out_dir.display(),
            );
            if report.counts.failed > 0 {
                ExitCode::FAILURE
            } else {
                ExitCode::SUCCESS
            }
        }
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn campaign_is_required() {
        assert!(parse_args(&[]).is_err());
        assert!(parse_args(&args(&["--out", "d"])).is_err());
    }

    #[test]
    fn full_command_line_parses() {
        let options = parse_args(&args(&[
            "--campaign",
            "c.txt",
            "--out",
            "results",
            "--workers",
            "2",
            "--queue-capacity",
            "4096",
            "--cancel-after",
            "10",
            "--quiet",
        ]))
        .expect("parses")
        .expect("not help");
        assert_eq!(options.campaign, PathBuf::from("c.txt"));
        assert_eq!(options.session.out_dir, PathBuf::from("results"));
        assert_eq!(options.workers, Some(2));
        assert_eq!(options.queue_capacity, Some(4096));
        assert_eq!(options.session.cancel_after, Some(10));
        assert!(options.session.quiet);
    }

    #[test]
    fn socket_and_spawn_flags_conflict() {
        assert!(parse_args(&args(&[
            "--campaign",
            "c.txt",
            "--socket",
            "/tmp/s",
            "--workers",
            "2",
        ]))
        .is_err());
        let options = parse_args(&args(&["--campaign", "c.txt", "--socket", "/tmp/s"]))
            .expect("parses")
            .expect("not help");
        assert_eq!(options.socket.as_deref(), Some("/tmp/s"));
    }

    #[test]
    fn help_short_circuits() {
        assert!(parse_args(&args(&["--help"])).unwrap().is_none());
    }
}
